"""Telemetry overhead: what trace sampling costs the hot path.

The observability layer's contract (docs/TELEMETRY.md) is that it is
safe to leave on in production: the registry counters are always live,
and trace spans are *sampled* so their cost scales with the rate, not
the update volume.  This benchmark measures that claim on the flood
workload — the same lossless full-speed run as
``bench_pipeline_throughput`` — at three sampling rates:

* ``off``     (rate 0.0)  — the baseline; unsampled updates carry
  ``None`` and touch no trace code beyond one attribute read;
* ``sampled`` (rate 0.01) — the recommended production setting; must
  cost < ``SAMPLED_TOLERANCE`` (5%) of baseline throughput;
* ``full``    (rate 1.0)  — every update spanned; reported for scale,
  bounded only loosely (it allocates one span per update).

The same off/sampled comparison then repeats on the ``processes``
backend, where a sampled trace additionally rides the cluster wire
(v2 frames) and is stitched back at the coordinator — distributed
tracing must also stay under ``SAMPLED_TOLERANCE``.

Throughput is noisy at these run lengths, so each configuration takes
the best of ``REPEATS`` runs before comparing.  Numbers land in
EXPERIMENTS.md.  ``REPRO_BENCH_QUICK=1`` shrinks the workload; the
module also runs standalone: ``python bench_telemetry_overhead.py``.
"""

import os

try:
    from conftest import print_series
except ImportError:                      # standalone invocation
    def print_series(title, rows):
        print(f"\n=== {title} ===")
        for row in rows:
            print("  " + row)

from repro.pipeline import CollectionPipeline, PipelineConfig
from repro.workload import StreamConfig, SyntheticStreamGenerator, \
    split_by_vp

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

N_VPS = 8 if QUICK else 12
DURATION_S = 300.0 if QUICK else 900.0
#: Dense event rate: overhead comparisons need runs long enough to
#: amortise fixed costs (thread/process pool spin-up), so this
#: workload packs far more events per hour than the §4.2 default.
EVENTS_PER_HOUR = 3600.0
REPEATS = 5 if QUICK else 3

#: Sampled tracing (rate <= 0.01) may cost at most this fraction of
#: baseline throughput — the acceptance bound.  The comparison takes
#: best-of-REPEATS to damp scheduler noise.
SAMPLED_TOLERANCE = 0.05
#: Full tracing allocates a span per update; keep a loose sanity
#: bound so a pathological regression still fails.
FULL_TOLERANCE = 0.50


def make_stream():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=N_VPS, n_prefix_groups=10, duration_s=DURATION_S,
        events_per_hour=EVENTS_PER_HOUR, seed=2,
    ))
    _, stream = generator.generate()
    return stream


def run_once(stream, sample_rate, backend="threads"):
    kwargs = dict(overflow_policy="block", backend=backend,
                  trace_sample_rate=sample_rate)
    if backend == "processes":
        kwargs["workers"] = 4
    else:
        kwargs["n_shards"] = 4
    pipeline = CollectionPipeline(PipelineConfig(**kwargs))
    result = pipeline.run(split_by_vp(stream), timeout=120.0)
    assert result.accounted
    assert result.metrics.ingest_dropped == 0
    spans = int(pipeline.metrics.tracer._sampled.value)
    if sample_rate == 1.0:
        assert spans == result.metrics.written
    elif sample_rate == 0.0:
        assert spans == 0
    else:
        assert spans > 0
    return result.metrics.throughput_ups, spans


def run_paired(stream, configs):
    """Best-of-REPEATS for several configs, *interleaved*.

    Each round runs every configuration once before any repeats, so
    slow drift on the host (page cache, thermal state, a neighbour
    waking up) hits all configurations evenly instead of penalising
    whichever happened to run last — back-to-back blocks showed a
    consistent ~5% bias toward the earlier block at these run lengths.
    """
    best = {key: (0.0, 0) for key in configs}
    for _ in range(REPEATS):
        for key, (rate, backend) in configs.items():
            observed = run_once(stream, rate, backend)
            if observed[0] > best[key][0]:
                best[key] = observed
    return best


def measure():
    stream = make_stream()
    threads = run_paired(stream, {
        "off": (0.0, "threads"),
        "sampled": (0.01, "threads"),
        "full": (1.0, "threads"),
    })
    procs = run_paired(stream, {
        "off": (0.0, "processes"),
        "sampled": (0.01, "processes"),
    })
    return {
        "updates": len(stream),
        "off": threads["off"][0],
        "sampled": threads["sampled"][0],
        "sampled_spans": threads["sampled"][1],
        "full": threads["full"][0],
        "full_spans": threads["full"][1],
        "procs_off": procs["off"][0],
        "procs_sampled": procs["sampled"][0],
        "procs_spans": procs["sampled"][1],
    }


def check(numbers):
    assert numbers["sampled"] >= numbers["off"] \
        * (1.0 - SAMPLED_TOLERANCE), (
        f"sampled tracing cost "
        f"{1 - numbers['sampled'] / numbers['off']:.1%} "
        f"(> {SAMPLED_TOLERANCE:.0%} tolerance)")
    assert numbers["full"] >= numbers["off"] * (1.0 - FULL_TOLERANCE)
    assert numbers["procs_sampled"] >= numbers["procs_off"] \
        * (1.0 - SAMPLED_TOLERANCE), (
        f"distributed sampled tracing cost "
        f"{1 - numbers['procs_sampled'] / numbers['procs_off']:.1%} "
        f"(> {SAMPLED_TOLERANCE:.0%} tolerance)")


def report(numbers):
    off = numbers["off"]
    procs_off = numbers["procs_off"]
    return [
        f"{numbers['updates']} updates, best of {REPEATS} runs each",
        f"tracing off:     {off:,.0f} updates/s (baseline)",
        f"sampled (0.01):  {numbers['sampled']:,.0f} updates/s "
        f"({numbers['sampled'] / off - 1.0:+.1%}, "
        f"{numbers['sampled_spans']} spans)",
        f"full (1.0):      {numbers['full']:,.0f} updates/s "
        f"({numbers['full'] / off - 1.0:+.1%}, "
        f"{numbers['full_spans']} spans)",
        f"processes off:   {procs_off:,.0f} updates/s (baseline)",
        f"processes 0.01:  {numbers['procs_sampled']:,.0f} updates/s "
        f"({numbers['procs_sampled'] / procs_off - 1.0:+.1%}, "
        f"{numbers['procs_spans']} spans over the wire)",
    ]


def test_trace_sampling_overhead(benchmark):
    numbers = benchmark.pedantic(measure, rounds=1, iterations=1)
    check(numbers)
    print_series("Telemetry — trace sampling overhead", report(numbers))


def main():
    numbers = measure()
    check(numbers)
    for row in report(numbers):
        print(row)
    print("ok")


if __name__ == "__main__":
    main()
