"""Shared fixtures for the experiment-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it
computes the experiment on our substrates, prints the same rows or
series the paper reports, and asserts the qualitative shape (who wins,
where knees fall).  Absolute numbers depend on the synthetic substrate
and are recorded in EXPERIMENTS.md.

Scales are chosen so the full suite runs in minutes on a laptop; every
generator is seeded, so outputs are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.rib import annotate_stream
from repro.simulation import (
    LinkFailure,
    LinkRestoration,
    SimulatedInternet,
    assign_prefix_ownership,
    random_vp_deployment,
    synthetic_known_topology,
)
from repro.workload import StreamConfig, SyntheticStreamGenerator


def hours(n: float) -> float:
    return n * 3600.0


@pytest.fixture(scope="session")
def ris_like_stream() -> Tuple[List[BGPUpdate], List[BGPUpdate]]:
    """One 'hour of RIS/RV' as (warmup, stream) — the §4 substrate."""
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=40, n_prefix_groups=30, duration_s=hours(1.0), seed=1,
    ))
    return generator.generate()


@pytest.fixture(scope="session")
def ris_like_annotated(ris_like_stream):
    """The measured hour annotated with implicit withdrawals."""
    warmup, stream = ris_like_stream
    return annotate_stream(warmup + stream)[len(warmup):]


@pytest.fixture(scope="session")
def failure_world():
    """A simulated mini-Internet with VPs and a failure event trace.

    Used by the component-2 benches (Figs. 8, 12) that need realistic
    event-driven update streams with topology ground truth.
    """
    topo = synthetic_known_topology(300, seed=10)
    net = SimulatedInternet(topo.copy(), seed=10)
    net.announce_ownership(
        assign_prefix_ownership(topo.ases(), 340, seed=10))
    net.deploy_vps(random_vp_deployment(topo, 0.2, seed=11))

    rng = random.Random(12)
    links = [(a, b) for a, b, _ in net.topo.links()]
    stream: List[BGPUpdate] = []
    t = 1000.0
    for _ in range(60):
        a, b = links[rng.randrange(len(links))]
        try:
            stream += net.apply_event(LinkFailure(a, b, t))
            stream += net.apply_event(LinkRestoration(a, b, t + 600.0))
        except ValueError:
            pass
        t += 1500.0
    stream.sort(key=lambda u: (u.time, u.vp, u.prefix))
    return topo, net, stream


def print_series(title: str, rows) -> None:
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + row)
