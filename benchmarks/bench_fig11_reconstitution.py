"""Figure 11: reconstitution power as a function of |α|/|β|.

The greedy per-prefix selection adds VPs one at a time; the first
additions raise the reconstitution power steeply, after which returns
diminish — GILL stops at RP = 0.94, which on RIS/RV data corresponds
to retaining only ~16% of the updates (§17.2).  We aggregate the
per-prefix curves of the synthetic hour and locate the knee.
"""

from collections import defaultdict

import numpy as np
from conftest import print_series

from repro.core.correlation import CorrelationGroups
from repro.core.reconstitution import power_curve

GRID = np.linspace(0.0, 1.0, 21)


def _run(data):
    groups = CorrelationGroups.build(data)
    by_prefix = defaultdict(list)
    for update in data:
        by_prefix[update.prefix].append(update)

    # Interpolate each prefix's step curve onto a common grid and
    # average — prefixes with a single VP are trivially flat and are
    # kept (they are part of the real distribution too).
    curves = []
    for prefix, updates in by_prefix.items():
        if len(updates) < 4:
            continue
        points = power_curve(prefix, updates, groups)
        xs = [f for f, _ in points] + [1.0]
        ys = [p for _, p in points] + [points[-1][1]]
        curves.append(np.interp(GRID, xs, ys))
    return np.mean(curves, axis=0)


def test_fig11_reconstitution_power(benchmark, ris_like_stream):
    warmup, stream = ris_like_stream
    mean_curve = benchmark.pedantic(
        _run, args=(warmup + stream,), rounds=1, iterations=1)

    rows = [f"|α|/|β| = {x:4.2f}: RP = {y:5.3f}"
            for x, y in zip(GRID, mean_curve)]
    print_series("Fig. 11 — reconstitution power curve", rows)

    # Monotone nondecreasing, ending at (almost) full reconstitution.
    assert all(b >= a - 1e-9 for a, b in zip(mean_curve, mean_curve[1:]))
    assert mean_curve[-1] > 0.95

    # Concave shape: the first quarter of the updates buys most of the
    # power (the overshoot-and-discard premise).
    quarter_gain = mean_curve[5] - mean_curve[0]
    last_gain = mean_curve[-1] - mean_curve[15]
    assert quarter_gain > 2 * last_gain

    # The 0.94 threshold is reached well before half the updates.
    knee = GRID[int(np.searchsorted(mean_curve, 0.94))]
    print(f"\nRP reaches 0.94 at |α|/|β| ≈ {knee:.2f} "
          f"(paper: ≈0.16 on RIS/RV)")
    assert knee <= 0.5
