"""Table 3: GILL vs. Rnd.-VP vs. best-case on a simulated mini-Internet.

For each VP coverage (2%..100% of ASes hosting a VP) we feed GILL the
updates induced by random link failures (its training data, as in §11),
let it build filters and anchors, and then score three use cases on:

* GILL's retained sample,
* a random-VP sample of the same size,
* the full data (best case — which processes far more updates).

Checked takeaways: (1) GILL discards a growing share as coverage rises;
(2) GILL approaches best-case while collecting several times less;
(3) GILL beats random VPs at equal budget.
"""

import random
from typing import Dict, List

import pytest
from conftest import print_series

from repro.core import categorize_ases
from repro.sampling import GillScheme, RandomVPs
from repro.simulation import (
    ForgedOriginHijack,
    LinkFailure,
    LinkRestoration,
    SimulatedInternet,
    assign_prefix_ownership,
    random_vp_deployment,
    synthetic_known_topology,
)
from repro.usecases import (
    PathChange,
    localize_failure,
    observed_as_links,
    visible_hijacks,
)

COVERAGES = (0.02, 0.10, 0.25, 0.50)
N_ASES = 200
N_TRAINING_FAILURES = 30
N_EVAL_FAILURES = 15
N_EVAL_HIJACKS = 15
SEED = 61


def _build_streams(topo, coverage):
    """One coverage point: stream + ground truth for the three tasks."""
    net = SimulatedInternet(topo.copy(), seed=SEED)
    net.announce_ownership(
        assign_prefix_ownership(topo.ases(), N_ASES + 40, seed=SEED))
    net.deploy_vps(random_vp_deployment(topo, coverage, seed=SEED + 1))
    rng = random.Random(SEED + 2)
    links = [(a, b) for a, b, _ in topo.links()]

    stream = []
    t = 1000.0
    for _ in range(N_TRAINING_FAILURES):
        a, b = links[rng.randrange(len(links))]
        try:
            stream += net.apply_event(LinkFailure(a, b, t))
            stream += net.apply_event(LinkRestoration(a, b, t + 600.0))
        except ValueError:
            pass
        t += 1500.0

    # Evaluation failures: remember per-VP prior paths for localization.
    eval_failures = []
    for _ in range(N_EVAL_FAILURES):
        a, b = links[rng.randrange(len(links))]
        try:
            prior = {}
            for prefix in net.prefixes():
                routes = net.routes_for(prefix)
                for asn in net.vp_ases:
                    route = routes.get(asn)
                    if route is not None:
                        prior[(f"vp{asn}", prefix)] = route.path
            updates = net.apply_event(LinkFailure(a, b, t))
            stream += updates
            restored = net.apply_event(LinkRestoration(a, b, t + 600.0))
            stream += restored
            if updates:
                eval_failures.append(((min(a, b), max(a, b)),
                                      prior, updates))
        except ValueError:
            pass
        t += 1500.0

    # Evaluation hijacks (Type-1, the most common, §11).
    eval_hijacks = []
    prefixes = net.prefixes()
    for _ in range(N_EVAL_HIJACKS):
        prefix = prefixes[rng.randrange(len(prefixes))]
        victim = net.origin_of(prefix)
        attacker = rng.choice([x for x in topo.ases() if x != victim])
        try:
            stream += net.apply_event(
                ForgedOriginHijack(attacker, prefix, time=t, type_x=1))
            eval_hijacks.append((prefix, attacker))
        except ValueError:
            pass
        t += 1500.0

    stream.sort(key=lambda u: (u.time, u.vp, u.prefix))
    return net, stream, eval_failures, eval_hijacks


def _score(sample, net, topo, eval_failures, eval_hijacks):
    sample_set = {(u.vp, u.time, u.prefix, u.as_path) for u in sample}

    p2p = topo.p2p_links()
    observed = observed_as_links(sample)
    topo_score = len(observed & p2p) / len(p2p) if p2p else 0.0

    localized = 0
    for link, prior, updates in eval_failures:
        visible = [u for u in updates
                   if (u.vp, u.time, u.prefix, u.as_path) in sample_set]
        changes = [
            PathChange(prior[(u.vp, u.prefix)],
                       () if u.is_withdrawal else u.as_path)
            for u in visible if (u.vp, u.prefix) in prior
        ]
        if changes and localize_failure(changes, link):
            localized += 1
    fail_score = (localized / len(eval_failures)
                  if eval_failures else 0.0)

    seen = visible_hijacks(sample, eval_hijacks)
    hijack_score = (len(seen) / len(eval_hijacks)
                    if eval_hijacks else 0.0)
    return topo_score, fail_score, hijack_score


@pytest.fixture(scope="module")
def table3():
    topo = synthetic_known_topology(N_ASES, seed=SEED)
    categories = categorize_ases(topo)
    rows = {}
    for coverage in COVERAGES:
        net, stream, eval_failures, eval_hijacks = _build_streams(
            topo, coverage)
        # A fixed absolute anchor budget: the paper's own Table-3 anchor
        # percentages (17% of 20 VPs ... 0.4% of 1000 VPs) correspond to
        # a near-constant 3-4 anchors — anchor diversity is a property
        # of the topology, not of the VP count.
        gill = GillScheme(seed=SEED, categories=categories,
                          events_per_cell=8, max_anchors=4)
        gill_sample = gill.sample(stream)
        budget = len(gill_sample)
        rnd_sample = RandomVPs(seed=SEED).sample(stream, budget)

        result = gill.last_result
        rows[coverage] = {
            "retained": budget / len(stream) if stream else 0.0,
            "anchor_fraction": result.anchors.fraction,
            "GILL": _score(gill_sample, net, topo,
                           eval_failures, eval_hijacks),
            "Rnd.-VP": _score(rnd_sample, net, topo,
                              eval_failures, eval_hijacks),
            "Best": _score(stream, net, topo,
                           eval_failures, eval_hijacks),
        }
    return rows


def test_table3_longterm(benchmark, table3):
    rows = benchmark.pedantic(lambda: table3, rounds=1, iterations=1)

    lines = []
    for coverage, row in sorted(rows.items()):
        lines.append(
            f"coverage {coverage:5.0%}: retained {row['retained']:5.1%}  "
            f"anchors {row['anchor_fraction']:5.1%}")
        for scheme in ("GILL", "Rnd.-VP", "Best"):
            topo_s, fail_s, hijack_s = row[scheme]
            lines.append(
                f"    {scheme:8s} topo {topo_s:6.1%}  "
                f"fail-loc {fail_s:6.1%}  hijack {hijack_s:6.1%}")
    print_series("Table 3 — long-term simulation", lines)

    # Takeaway #1: GILL discards more as coverage grows.
    retained = [rows[c]["retained"] for c in COVERAGES]
    assert retained[-1] < retained[0]

    # Takeaway #2: overshoot-and-discard is efficient — GILL at high
    # coverage approaches best-case on every use case while retaining
    # a fraction of the updates.
    high = rows[COVERAGES[-1]]
    for i in range(3):
        assert high["GILL"][i] >= high["Best"][i] - 0.25
    assert high["retained"] < 0.5

    # Takeaway #3: GILL beats random VPs at equal budget on a majority
    # of (coverage, use case) cells and never loses badly.
    wins, cells = 0, 0
    for coverage in COVERAGES:
        for i in range(3):
            cells += 1
            gill_v = rows[coverage]["GILL"][i]
            rnd_v = rows[coverage]["Rnd.-VP"][i]
            if gill_v >= rnd_v - 0.001:
                wins += 1
            assert gill_v >= rnd_v - 0.25
    assert wins >= 2 * cells / 3

    # Higher coverage helps every scheme (first vs last coverage).
    for scheme in ("GILL", "Best"):
        assert rows[COVERAGES[-1]][scheme][0] >= \
            rows[COVERAGES[0]][scheme][0]
