"""Ablations of GILL's default parameters (DESIGN.md, §17-§18).

* **target reconstitution power** (default 0.94, Fig. 11): sweep the
  stop threshold and measure the retention/information trade-off;
* **gamma** (default 10%, §18.4): sweep the anchor candidate-pool
  width and measure total anchor volume at fixed anchor count;
* **correlation construction window** (default 2 days, §17.1): measure
  how stable the correlation-group weight ranking is between two
  disjoint training windows as the window grows;
* **path/community correlation** (§18.2): the fraction of identical
  AS paths sharing identical community sets (paper: 93%), which is why
  Component #2's graphs omit a dedicated community dimension.
"""

from collections import defaultdict

import numpy as np
import pytest
from conftest import print_series

from repro.core import (
    CorrelationGroups,
    UpdateSampler,
    detect_events,
    infer_categories,
    score_vps,
    select_anchor_vps,
    select_events_balanced,
    update_volumes,
)
from repro.core.correlation import signature
from repro.usecases import observed_as_links
from repro.workload import StreamConfig, SyntheticStreamGenerator


@pytest.fixture(scope="module")
def ablation_stream():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=24, n_prefix_groups=16, duration_s=2400.0, seed=81))
    warmup, stream = generator.generate()
    return warmup + stream


def test_ablation_target_power(benchmark, ablation_stream):
    """Retention grows with the target; information saturates by 0.94."""
    targets = (0.5, 0.8, 0.94, 0.99)

    def run():
        rows = {}
        full_links = observed_as_links(ablation_stream)
        for target in targets:
            result = UpdateSampler(target_power=target).run(
                ablation_stream)
            kept_links = observed_as_links(result.nonredundant)
            rows[target] = (
                result.retention,
                len(kept_links & full_links) / len(full_links),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Ablation — target reconstitution power", [
        f"target {t:4.2f}: retention {rows[t][0]:6.1%}  "
        f"link coverage {rows[t][1]:6.1%}"
        for t in targets
    ])

    retentions = [rows[t][0] for t in targets]
    coverages = [rows[t][1] for t in targets]
    # Retention and information are monotone in the target.
    assert all(b >= a - 1e-9 for a, b in zip(retentions, retentions[1:]))
    assert all(b >= a - 0.02 for a, b in zip(coverages, coverages[1:]))
    # Diminishing returns: information bought per retained update
    # decreases as the target rises — the Fig.-11 concavity that makes
    # 0.94 a sensible stopping point.
    efficiency = [c / r for c, r in zip(coverages, retentions)]
    assert all(b <= a + 1e-9 for a, b in zip(efficiency, efficiency[1:]))


def test_ablation_gamma(benchmark, ablation_stream):
    """A wider candidate pool buys lower anchor volume (the trade-off
    knob of §18.4: low gamma favors uniqueness, high gamma favors
    cheapness)."""
    gammas = (0.01, 0.1, 0.5, 1.0)

    def run():
        events = detect_events(ablation_stream)
        categories = infer_categories(ablation_stream)
        selected = select_events_balanced(events, categories, 10, seed=0)
        vps, scores = score_vps(ablation_stream, selected)
        volumes = update_volumes(ablation_stream, vps)
        volume_of = dict(zip(vps, volumes))
        rows = {}
        for gamma in gammas:
            selection = select_anchor_vps(vps, scores, volumes,
                                          gamma=gamma, max_anchors=6)
            total_volume = sum(volume_of[a] for a in selection.anchors)
            rows[gamma] = (len(selection.anchors), total_volume)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Ablation — gamma (anchor pool width)", [
        f"gamma {g:4.2f}: {rows[g][0]} anchors, "
        f"total volume {rows[g][1]} updates"
        for g in gammas
    ])

    # Same anchor count everywhere (capped), but the widest pool picks
    # the cheapest VPs: volume at gamma=1.0 <= volume at gamma=0.01.
    counts = {rows[g][0] for g in gammas}
    assert len(counts) == 1
    assert rows[1.0][1] <= rows[0.01][1]


def test_ablation_correlation_window(benchmark):
    """Longer training windows stabilize Component #1's classification.

    The paper's framing is group-ranking stability (94% after two
    days); what the platform consumes downstream is the redundant
    (vp, prefix) classification that becomes drop rules, so stability
    is measured there: two interleaved training sets of the same
    window must agree on which keys are redundant, increasingly so as
    the window grows.
    """
    lengths = (600.0, 2400.0, 7200.0)

    def agreement(window_s, seed):
        # Two same-size training sets drawn from the same period:
        # interleave 100s time buckets so drift affects both equally.
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=20, n_prefix_groups=12, duration_s=window_s,
            seed=seed))
        generator.warmup_updates()
        stream = generator.generate_window(1000.0, 2 * window_s)
        first = [u for u in stream if int(u.time // 100) % 2 == 0]
        second = [u for u in stream if int(u.time // 100) % 2 == 1]

        def redundant_keys(sample):
            result = UpdateSampler().run(sample)
            return {(u.vp, u.prefix) for u in result.redundant}

        keys_a = redundant_keys(first)
        keys_b = redundant_keys(second)
        union = keys_a | keys_b
        if not union:
            return 1.0
        return len(keys_a & keys_b) / len(union)

    def run():
        return {
            window: float(np.mean([agreement(window, seed)
                                   for seed in (1, 2, 3)]))
            for window in lengths
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Ablation — correlation construction window", [
        f"window {w:6.0f}s: redundant-classification agreement "
        f"{rows[w]:6.1%}"
        for w in lengths
    ])

    values = [rows[w] for w in lengths]
    # Longer windows agree more, and the default-scale window is
    # already usably stable (the paper's 2-day sweet-spot argument).
    assert values[-1] >= values[0] - 0.02
    assert values[1] > 0.5


def test_ablation_path_community_correlation(benchmark, ablation_stream):
    """§18.2: identical AS paths share the exact community set in ~93%
    of cases, so the feature graphs need no community dimension."""

    def run():
        comm_sets = defaultdict(set)
        for update in ablation_stream:
            if not update.is_withdrawal:
                comm_sets[update.as_path].add(update.communities)
        consistent = sum(1 for sets in comm_sets.values()
                         if len(sets) == 1)
        return consistent / len(comm_sets)

    fraction = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nidentical paths sharing one community set: "
          f"{fraction:.1%} (paper: 93%)")
    assert fraction > 0.8
