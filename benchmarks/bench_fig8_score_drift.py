"""Figure 8: redundancy-score drift between two runs of Component #2.

The paper compares pairwise VP redundancy scores computed m months
apart (m = 6..66): within 12 months the median absolute difference
stays below 0.1 (scores change <5%), justifying the yearly anchor
refresh.  We compress a 'month' into one synthetic window and model
long-term behavioral drift with the generator's ``drift_vps``.
"""

import numpy as np
from conftest import print_series

from repro.core import (
    detect_events,
    infer_categories,
    score_drift,
    select_events_balanced,
    score_vps,
)
from repro.workload import StreamConfig, SyntheticStreamGenerator

MONTH_GAPS = (6, 12, 24, 42, 66)
WINDOW_S = 2400.0
#: Fraction of VPs whose behavior drifts per month.
DRIFT_PER_MONTH = 0.04


def _scores(generator, start):
    warmup = generator.warmup_updates(start - 1.0)
    stream = generator.generate_window(start, WINDOW_S)
    data = warmup + stream
    events = detect_events(stream)
    selected = select_events_balanced(
        events, infer_categories(data), per_cell=10, seed=0)
    return score_vps(data, selected)


def _run_one(seed):
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=25, n_prefix_groups=18, duration_s=WINDOW_S, seed=seed))
    vps0, base = _scores(generator, 1000.0)

    drifts = {}
    clock = 1000.0 + WINDOW_S
    previous = 0
    for months in MONTH_GAPS:
        for _ in range(months - previous):
            generator.drift_vps(DRIFT_PER_MONTH)
            clock += WINDOW_S
        previous = months
        vps, scores = _scores(generator, clock)
        assert vps == vps0
        drifts[months] = score_drift(base, scores)
    return drifts


def _run():
    # One run's window-to-window noise swamps the drift signal at this
    # scale; pooling seeded universes recovers it, and the growth
    # check is a paired per-universe comparison (long gap vs short
    # gap within the same universe).
    per_seed = [_run_one(seed) for seed in (41, 42, 43, 44, 45)]
    pooled = {
        months: np.concatenate([d[months] for d in per_seed])
        for months in MONTH_GAPS
    }
    paired_growth = [
        float(np.median(d[MONTH_GAPS[-1]]) - np.median(d[MONTH_GAPS[0]]))
        for d in per_seed
    ]
    return pooled, paired_growth


def test_fig8_score_drift(benchmark):
    drifts, paired_growth = benchmark.pedantic(
        _run, rounds=1, iterations=1)

    rows = [
        f"{months:>2d} months: median |dR| "
        f"{np.median(drifts[months]):.3f}   p90 "
        f"{np.quantile(drifts[months], 0.9):.3f}"
        for months in MONTH_GAPS
    ]
    rows.append(
        "per-universe drift(66mo) - drift(6mo): "
        + ", ".join(f"{g:+.3f}" for g in paired_growth))
    print_series("Fig. 8 — redundancy-score drift", rows)

    medians = [float(np.median(drifts[m])) for m in MONTH_GAPS]
    # Within a year the drift stays modest — the yearly-refresh
    # argument (the paper's median is below 0.1; our window-to-window
    # measurement noise adds a constant floor).
    assert medians[1] < 0.25
    # Drift grows with the gap.  Each universe compares its own
    # 66-month drift against its 6-month drift (paired, so the noise
    # floor cancels): the mean paired growth is positive and a
    # majority of universes agree.
    assert float(np.mean(paired_growth)) > 0.0
    assert sum(g > 0 for g in paired_growth) >= 3
