"""Figure 12: balanced vs. random BGP-event selection (§18.1).

Random selection over-samples event pairs involving well-connected
transit ASes (the paper: 69% Transit-2 vs 11% hypergiants); GILL's
balanced scheme fills an equal quota per (category-pair, kind) cell.
We detect events on the simulated failure trace, select both ways, and
compare the category-pair distributions (Table 5 categories).
"""

import numpy as np
from conftest import print_series

from repro.core import (
    ASCategory,
    categorize_ases,
    detect_events,
    select_events_balanced,
    select_events_random,
    selection_matrix,
)


def _run(topo, stream):
    categories = categorize_ases(topo)
    events = detect_events(stream)
    balanced = select_events_balanced(events, categories, per_cell=6,
                                      seed=3)
    rnd = select_events_random(events, len(balanced), seed=3)
    return (categories, events,
            selection_matrix(balanced, categories),
            selection_matrix(rnd, categories))


def _render(matrix):
    names = {c: c.name[:9] for c in ASCategory}
    rows = []
    for c1 in ASCategory:
        cells = []
        for c2 in ASCategory:
            pair = (min(c1, c2), max(c1, c2))
            cells.append(f"{matrix.get(pair, 0.0):5.2f}")
        rows.append(f"{names[c1]:>10s} " + " ".join(cells))
    header = " " * 11 + " ".join(f"{names[c]:>5s}" for c in ASCategory)
    return [header] + rows


def test_fig12_event_balance(benchmark, failure_world):
    topo, _, stream = failure_world
    categories, events, balanced, rnd = benchmark.pedantic(
        _run, args=(topo, stream), rounds=1, iterations=1)

    print_series("Fig. 12a — balanced selection", _render(balanced))
    print_series("Fig. 12b — random selection", _render(rnd))

    assert len(events) > 50

    # Random selection concentrates on a few cells; balanced spreads.
    max_balanced = max(balanced.values())
    max_random = max(rnd.values())
    assert max_balanced <= max_random

    # Balanced selection covers at least as many category pairs.
    assert len(balanced) >= len(rnd)

    # Dispersion: the balanced distribution is closer to uniform
    # (lower standard deviation across populated cells).
    pairs = set(balanced) | set(rnd)
    vb = np.array([balanced.get(p, 0.0) for p in pairs])
    vr = np.array([rnd.get(p, 0.0) for p in pairs])
    assert vb.std() <= vr.std() + 1e-9
