"""Figure 6: VP-level redundancy under the three definitions.

The paper finds that 70% / 26% / 22% of 100 random RIS+RV VPs are
redundant with at least one other VP (>90% of their updates covered)
under Definitions 1 / 2 / 3.  We reproduce the experiment on the
calibrated synthetic hour and check the characteristic staircase.
"""

from conftest import print_series

from repro.core.redundancy import RedundancyDefinition, vp_redundancy

PAPER_FRACTIONS = {
    RedundancyDefinition.PREFIX: 0.70,
    RedundancyDefinition.PREFIX_ASPATH: 0.26,
    RedundancyDefinition.PREFIX_ASPATH_COMMUNITY: 0.22,
}


def test_fig6_vp_redundancy(benchmark, ris_like_annotated):
    def run():
        return {
            definition: vp_redundancy(ris_like_annotated, definition)
            for definition in RedundancyDefinition
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"Def. {d.value}: {reports[d].fraction:6.1%} of VPs redundant "
        f"({len(reports[d].redundant_pairs)} pairs; "
        f"paper: {PAPER_FRACTIONS[d]:.0%})"
        for d in RedundancyDefinition
    ]
    print_series("Fig. 6 — VP redundancy", rows)

    fractions = [reports[d].fraction for d in RedundancyDefinition]
    # The staircase: a large majority under Def 1, a sharp drop to a
    # minority under Def 2, slightly lower still under Def 3.
    assert fractions[0] >= fractions[1] >= fractions[2]
    assert fractions[0] > 0.5
    assert fractions[0] - fractions[1] > 0.2
    assert fractions[1] < 0.5
    assert fractions[2] > 0.0

    # Redundancy is meaningful at the pair level too: some pairs are
    # mutual (both directions), which random assignment wouldn't give.
    pairs = set(reports[RedundancyDefinition.PREFIX].redundant_pairs)
    mutual = {(a, b) for a, b in pairs if (b, a) in pairs}
    assert mutual
