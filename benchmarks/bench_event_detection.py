"""Event-analysis pipeline cost: per-segment detector latency and
store query latency.

The standing event subsystem (docs/EVENTS.md) rides the archive's seal
hook, so its cost budget is simple: analysing one sealed segment must
be cheap relative to the segment interval it rides on, or the detector
chain would fall behind collection.  This bench streams the seeded
monitoring showcase through a live archive with the pipeline attached
and reports:

* per-detector ``observe()`` latency per sealed segment (from the
  ``repro_events_detector_seconds`` histogram the pipeline maintains);
* end-to-end per-segment latency (decode + detect + correlate +
  journal);
* event-store query latency over the materialized incidents.

Acceptance: all five seeded incident types are detected and resolved,
the mean per-segment cost stays under :data:`SEGMENT_BUDGET_S`, and
indexed store queries answer in well under a millisecond.

``REPRO_BENCH_QUICK=1`` trims the query-load repetition for CI; the
module also runs standalone: ``python bench_event_detection.py``.
"""

import os
import time

try:
    from conftest import print_series
except ImportError:                      # standalone invocation
    def print_series(title, rows):
        print(f"\n=== {title} ===")
        for row in rows:
            print("  " + row)

from repro.bgp.archive import RollingArchiveWriter
from repro.events import (
    EVENT_TYPES,
    EventPipeline,
    EventState,
    EventStore,
)
from repro.simulation import monitoring_showcase
from repro.telemetry import MetricsRegistry

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: A sealed segment must be analysed far faster than it is produced;
#: one second against a 300s segment interval is a 300x safety margin.
SEGMENT_BUDGET_S = 1.0

QUERY_REPEATS = 50 if QUICK else 500


def run_showcase(directory):
    """Stream the showcase through a live archive + event pipeline."""
    scenario, truth = monitoring_showcase()
    registry = MetricsRegistry()
    store = EventStore()
    pipeline = EventPipeline(store=store, registry=registry)
    archive = RollingArchiveWriter(directory, interval_s=300.0,
                                   compress=True, index=True)
    pipeline.attach(archive)
    started = time.perf_counter()
    archive.write_stream(scenario.stream)
    archive.close()
    wall = time.perf_counter() - started
    return scenario, store, registry, wall


def detector_latencies(registry):
    """{detector: (segments, mean seconds)} from the histogram."""
    out = {}
    for family in registry.collect():
        if family.name != "repro_events_detector_seconds":
            continue
        for sample in family.samples:
            snap = sample.value
            if snap.count:
                out[dict(sample.labels)["detector"]] = \
                    (snap.count, snap.mean)
    return out


def segment_latency(registry):
    for family in registry.collect():
        if family.name == "repro_events_segment_seconds":
            snap = family.samples[0].value
            if snap.count:
                return snap.count, snap.mean
    return 0, 0.0


def run_query_load(store, repeats=QUERY_REPEATS):
    """Mean latency of the indexed store query paths."""
    shapes = [
        ("by type", dict(type="moas")),
        ("by state", dict(state=EventState.RESOLVED)),
        ("by window", dict(start=500.0, end=2500.0)),
        ("unfiltered", {}),
    ]
    rows = {}
    for label, kwargs in shapes:
        started = time.perf_counter()
        for _ in range(repeats):
            store.query(**kwargs)
        rows[label] = (time.perf_counter() - started) / repeats
    return rows


def check_detections(store):
    types = {t for e in store.events() for t in e.types}
    missing = set(EVENT_TYPES) - types
    assert not missing, f"undetected incident types: {sorted(missing)}"
    assert all(e.state == EventState.RESOLVED for e in store.events())


def us(seconds):
    return f"{seconds * 1e6:.0f}us"


def ms(seconds):
    return f"{seconds * 1e3:.2f}ms"


def report(store, registry, wall, query_rows):
    segments, seg_mean = segment_latency(registry)
    rows = [
        f"{segments} segments analysed in {wall:.2f}s wall "
        f"({len(store)} correlated events)",
        f"per-segment mean {ms(seg_mean)} "
        f"(budget {SEGMENT_BUDGET_S:.1f}s)",
    ]
    for detector, (count, mean) in sorted(detector_latencies(registry).items()):
        rows.append(f"detector {detector:<16s} {ms(mean)}/segment "
                    f"over {count} segments")
    for label, mean in query_rows.items():
        rows.append(f"store query {label:<12s} {us(mean)}/query")
    print_series("Event detection — seal-hook pipeline cost", rows)
    return seg_mean


def test_event_detection_latency(benchmark, tmp_path):
    scenario, store, registry, wall = benchmark.pedantic(
        run_showcase, args=(str(tmp_path),), rounds=1, iterations=1)
    check_detections(store)
    query_rows = run_query_load(store)
    seg_mean = report(store, registry, wall, query_rows)
    assert seg_mean < SEGMENT_BUDGET_S
    assert max(query_rows.values()) < 0.001   # sub-ms store queries


def main():
    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        _, store, registry, wall = run_showcase(directory)
        check_detections(store)
        query_rows = run_query_load(store)
        seg_mean = report(store, registry, wall, query_rows)
        assert seg_mean < SEGMENT_BUDGET_S
        assert max(query_rows.values()) < 0.001
    print("ok")


if __name__ == "__main__":
    main()
