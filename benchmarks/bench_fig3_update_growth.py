"""Figure 3: growth in updates collected by RIS and RV combined.

(a) hourly average updates per VP; (b) updates per hour across all
VPs — the quadratic compound of more VPs and more updates per VP
(§3.2) that motivates overshoot-and-discard.
"""

from conftest import print_series

from repro.workload.growth import (
    growth_series,
    quadratic_growth_factor,
    total_updates_per_hour,
    updates_per_vp_per_hour,
)


def _compute():
    return growth_series(2003, 2023)


def test_fig3_update_growth(benchmark):
    series = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = [
        f"{p.year}: per-VP {p.updates_per_vp:7.0f}/h   "
        f"total {p.total_updates / 1e6:7.1f}M/h"
        for p in series
    ]
    print_series("Fig. 3 — update growth", rows)

    # (a) per-VP rate grows monotonically, >10x over two decades.
    per_vp = [p.updates_per_vp for p in series]
    assert per_vp == sorted(per_vp)
    assert per_vp[-1] / per_vp[0] > 10

    # (a) 2023 average matches the §2 figure (28K updates/hour).
    assert updates_per_vp_per_hour(2023) == 28_000

    # (b) total growth outpaces VP growth (the quadratic compound).
    assert quadratic_growth_factor() > 3.0

    # (b) billions of updates per day in 2023 (§2).
    assert total_updates_per_hour(2023) * 24 > 1e9
