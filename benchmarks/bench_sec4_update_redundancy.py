"""§4.2 headline numbers: update-level redundancy under Defs 1/2/3.

The paper measures, on one hour of RIS+RV data, that 97% / 77% / 70%
of updates are redundant with at least one other update under the
three gradually stricter definitions.  We reproduce the measurement on
the calibrated synthetic hour.
"""

from conftest import print_series

from repro.core.redundancy import RedundancyDefinition, update_redundancy

PAPER_FRACTIONS = {
    RedundancyDefinition.PREFIX: 0.97,
    RedundancyDefinition.PREFIX_ASPATH: 0.77,
    RedundancyDefinition.PREFIX_ASPATH_COMMUNITY: 0.70,
}


def test_sec4_update_redundancy(benchmark, ris_like_annotated):
    def run():
        return {
            definition: update_redundancy(ris_like_annotated, definition)
            for definition in RedundancyDefinition
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"Def. {d.value}: {reports[d].fraction:6.1%} redundant "
        f"(paper: {PAPER_FRACTIONS[d]:.0%})"
        for d in RedundancyDefinition
    ]
    print_series("§4.2 — redundant update fractions", rows)

    fractions = [reports[d].fraction for d in RedundancyDefinition]
    # Shape: strictly nested definitions give nonincreasing redundancy,
    # with a large Def1->Def2 drop and a small Def2->Def3 drop.
    assert fractions[0] >= fractions[1] >= fractions[2]
    assert fractions[0] > 0.9
    assert fractions[0] - fractions[1] > 0.1
    assert fractions[1] - fractions[2] < 0.1
    # Magnitudes within a reasonable band of the paper's.
    assert abs(fractions[0] - 0.97) < 0.05
    assert abs(fractions[1] - 0.77) < 0.15
    assert abs(fractions[2] - 0.70) < 0.18
