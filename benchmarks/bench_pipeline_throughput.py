"""Pipeline throughput and empirical Table-1 loss.

The analytic daemon model (``bench_table1_daemon_load``) predicts the
loss fraction from an oversubscription formula; this benchmark
*measures* it on the concurrent runtime.  Per-peer Poisson sessions
are replayed in accelerated wall time against a
:class:`~repro.pipeline.ServiceCostModel` charging the calibrated §8
work units, and the observed ingest drop rate is compared to
``steady_state_loss`` — Table 1's measured column.

Three checks:

* flood throughput — sustained updates/sec with no pacing and no
  capacity model, lossless (``block`` policy), full drain;
* saturated — demand is 2x the modelled CPU, analytic loss 50%; the
  empirical loss must land within ``LOSS_TOLERANCE`` (0.10 absolute,
  see docs/PIPELINE.md for why bursts and the drain tail shift it);
* unsaturated — capacity is 2x demand; the empirical loss must be
  (near) zero.

A fourth experiment measures the multi-process backend's scaling
(docs/CLUSTER.md).  The thread backend models today's single-daemon
collector: every shard charges the *same* §8 cost model, so the whole
pipeline shares one modelled CPU budget.  The processes backend gives
each worker its own copy of the model — one CPU budget per node,
which is exactly the multi-node deployment the cluster reproduces —
and the measured wall-clock updates/sec must scale with the worker
count.  ``--backend processes --workers 4`` runs one comparison
point; ``--sweep 1,2,4`` emits the updates/sec-vs-process-count
curve; ``--json`` records either into a bench JSON document.
``--spin`` switches the cost model to spin mode (work units are
burned, not slept) for measuring *physical* CPU scaling — only
meaningful on a host with at least as many free cores as workers.

``REPRO_BENCH_QUICK=1`` shrinks the workload for CI smoke runs; the
module also runs standalone: ``python bench_pipeline_throughput.py``.
"""

import argparse
import json
import os

try:
    from conftest import print_series
except ImportError:                      # standalone invocation
    def print_series(title, rows):
        print(f"\n=== {title} ===")
        for row in rows:
            print("  " + row)

from repro.bgp.daemon import steady_state_loss
from repro.pipeline import (
    CollectionPipeline,
    PipelineConfig,
    ServiceCostModel,
)
from repro.workload import (
    StreamConfig,
    SyntheticStreamGenerator,
    poisson_session_streams,
    split_by_vp,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Documented tolerance between empirical and analytic loss: Poisson
#: bursts, finite queues and the lossless drain tail all pull the
#: measured fraction a few points off the steady-state formula.
LOSS_TOLERANCE = 0.10

#: The §8 sizing of the capacity experiments (scaled for wall time).
PEERS = 8
RATE_PER_HOUR = 1800.0
STREAM_DURATION_S = 150.0 if QUICK else 600.0
TIME_SCALE = 200.0
#: Everything is retained (accept-all filters), so one update costs
#: parse + filter + write = 51.2 work units.
UNIT_COST = 51.2
DEMAND_UNITS_PER_S = (PEERS * RATE_PER_HOUR / 3600.0
                      * TIME_SCALE * UNIT_COST)


def run_flood(n_vps: int = 12, duration_s: float = 900.0):
    """Lossless full-speed run over a synthetic RIS-like stream."""
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=n_vps, n_prefix_groups=10, duration_s=duration_s, seed=2,
    ))
    _, stream = generator.generate()
    pipeline = CollectionPipeline(PipelineConfig(
        n_shards=4, overflow_policy="block"))
    result = pipeline.run(split_by_vp(stream), timeout=120.0)
    return len(stream), result


def run_capacity(capacity_units_per_s: float, seed: int = 7):
    """Paced, capacity-limited run; returns (result, analytic_loss)."""
    streams = poisson_session_streams(
        PEERS, RATE_PER_HOUR, STREAM_DURATION_S, seed=seed)
    # Small ingest queues: the updates absorbed while the queues first
    # fill are served during the drain tail and would otherwise bias
    # the measured loss low on short runs.
    pipeline = CollectionPipeline(PipelineConfig(
        n_shards=2,
        overflow_policy="drop",
        ingest_queue_capacity=16,
        time_scale=TIME_SCALE,
        cost_model=ServiceCostModel(capacity_units_per_s),
    ))
    result = pipeline.run(streams, timeout=300.0)
    analytic = steady_state_loss(
        PEERS, RATE_PER_HOUR * TIME_SCALE, True,
        retain_fraction=1.0, capacity=capacity_units_per_s,
    )
    return result, analytic.loss_fraction


# -- multi-process scaling (docs/CLUSTER.md) ---------------------------------

#: Scaling-run capacity: one retained update charges ~51.2/capacity
#: seconds (~5ms) of modelled daemon CPU, so the cost model — not the
#: Python interpreter — is the bottleneck on every host.
SCALING_CAPACITY_UNITS_PER_S = 10_240.0
#: 16 VPs hash evenly over 4 shards with this seed (the per-shard
#: critical path is ~28% of the work, close to the 25% ideal), so the
#: curve measures the backend rather than workload skew.
SCALING_VPS = 16
SCALING_SEED = 3
SCALING_DURATION_S = 450.0 if QUICK else 900.0
#: The processes backend must beat the thread baseline by at least
#: this factor at 4 workers (the PR's acceptance bar).
MIN_SPEEDUP_AT_4 = 2.0


def run_scaling(backend: str, workers: int, mode: str = "sleep"):
    """One capacity-bound run; returns (updates, wall_s, updates_per_s).

    The thread backend shares one :class:`ServiceCostModel` across all
    shards (a single daemon CPU); the processes backend ships each
    worker its own copy (one CPU budget per collector node), which is
    where the scaling comes from.
    """
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=SCALING_VPS, n_prefix_groups=10,
        duration_s=SCALING_DURATION_S, seed=SCALING_SEED,
    ))
    _, stream = generator.generate()
    kwargs = dict(
        overflow_policy="block",
        cost_model=ServiceCostModel(SCALING_CAPACITY_UNITS_PER_S,
                                    mode=mode),
        backend=backend,
    )
    if backend == "processes":
        kwargs["workers"] = workers
    else:
        kwargs["n_shards"] = workers
    pipeline = CollectionPipeline(PipelineConfig(**kwargs))
    result = pipeline.run(split_by_vp(stream), timeout=600.0)
    assert result.accounted
    metrics = result.metrics
    return metrics.received, metrics.wall_time_s, metrics.throughput_ups


def run_scaling_sweep(worker_counts, baseline_workers=None,
                      mode: str = "sleep"):
    """Thread baseline + one processes point per worker count.

    Returns the bench JSON document: the curve is ``points`` (ordered
    by worker count) and every point carries its speedup over the
    thread baseline at ``baseline_workers`` shards.
    """
    baseline_workers = baseline_workers or max(worker_counts)
    updates, base_wall, base_ups = run_scaling("threads",
                                               baseline_workers,
                                               mode=mode)
    document = {
        "experiment": "pipeline_process_scaling",
        "workload": {
            "updates": updates,
            "vps": SCALING_VPS,
            "capacity_units_per_s": SCALING_CAPACITY_UNITS_PER_S,
            "cost_mode": mode,
            "quick": QUICK,
        },
        "baseline": {
            "backend": "threads",
            "workers": baseline_workers,
            "wall_s": base_wall,
            "updates_per_s": base_ups,
        },
        "points": [],
    }
    for workers in worker_counts:
        _, wall, ups = run_scaling("processes", workers, mode=mode)
        document["points"].append({
            "backend": "processes",
            "workers": workers,
            "wall_s": wall,
            "updates_per_s": ups,
            "speedup": ups / base_ups if base_ups else 0.0,
        })
    return document


def check_scaling(document):
    """The curve must rise and clear the 2x bar at >= 4 workers."""
    points = {p["workers"]: p for p in document["points"]}
    for workers, point in points.items():
        if workers >= 4:
            assert point["speedup"] >= MIN_SPEEDUP_AT_4, (
                f"processes backend at {workers} workers is only "
                f"{point['speedup']:.2f}x the thread baseline "
                f"(need {MIN_SPEEDUP_AT_4}x)")


def check_flood(offered, result):
    metrics = result.metrics
    assert result.accounted
    assert metrics.ingest_dropped == 0
    assert metrics.received == offered
    assert metrics.written == metrics.retained + metrics.discarded
    assert metrics.throughput_ups > 1000.0


def check_capacity(result, analytic, saturated):
    metrics = result.metrics
    # Graceful drain: every enqueued update was processed, never lost.
    assert result.accounted
    assert metrics.retained + metrics.discarded == metrics.processed \
        == metrics.written
    empirical = metrics.loss_fraction
    if saturated:
        assert analytic > 0.3
        assert abs(empirical - analytic) < LOSS_TOLERANCE
    else:
        assert analytic == 0.0
        assert empirical < 0.02


def test_pipeline_flood_throughput(benchmark):
    offered, result = benchmark.pedantic(
        run_flood, rounds=1, iterations=1)
    check_flood(offered, result)
    metrics = result.metrics
    print_series("Pipeline — flood throughput (lossless)", [
        f"offered {metrics.received} updates over "
        f"{metrics.wall_time_s:.2f}s wall",
        f"sustained {metrics.throughput_ups:,.0f} updates/s, "
        f"drops {metrics.ingest_dropped}, "
        f"written {metrics.written}",
    ])


def test_pipeline_empirical_loss_saturated(benchmark):
    result, analytic = benchmark.pedantic(
        run_capacity, args=(DEMAND_UNITS_PER_S * 0.5,),
        rounds=1, iterations=1)
    check_capacity(result, analytic, saturated=True)
    print_series("Pipeline — saturated (demand = 2x capacity)", [
        f"analytic loss {analytic:.1%}  "
        f"empirical loss {result.metrics.loss_fraction:.1%}  "
        f"(tolerance {LOSS_TOLERANCE:.0%})",
        f"received {result.metrics.received}  "
        f"dropped {result.metrics.ingest_dropped}",
    ])


def test_pipeline_empirical_loss_unsaturated(benchmark):
    result, analytic = benchmark.pedantic(
        run_capacity, args=(DEMAND_UNITS_PER_S * 2.0,),
        rounds=1, iterations=1)
    check_capacity(result, analytic, saturated=False)
    print_series("Pipeline — unsaturated (capacity = 2x demand)", [
        f"analytic loss {analytic:.1%}  "
        f"empirical loss {result.metrics.loss_fraction:.1%}",
        f"received {result.metrics.received}  "
        f"dropped {result.metrics.ingest_dropped}",
    ])


def test_pipeline_process_scaling(benchmark):
    document = benchmark.pedantic(
        run_scaling_sweep, args=([4],), rounds=1, iterations=1)
    check_scaling(document)
    base = document["baseline"]
    rows = [f"threads x{base['workers']}: "
            f"{base['updates_per_s']:,.0f} updates/s (baseline)"]
    rows += [f"processes x{p['workers']}: "
             f"{p['updates_per_s']:,.0f} updates/s "
             f"({p['speedup']:.2f}x)"
             for p in document["points"]]
    print_series("Pipeline — process scaling (CPU-bound)", rows)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="pipeline throughput / loss / process scaling")
    parser.add_argument("--backend", choices=("threads", "processes"),
                        default=None,
                        help="run one scaling point on this backend")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for --backend / the "
                             "thread baseline")
    parser.add_argument("--sweep",
                        help="comma-separated process counts, e.g. "
                             "1,2,4 — emits the scaling curve")
    parser.add_argument("--json", dest="json_out",
                        help="write the scaling document to this file")
    parser.add_argument("--spin", action="store_true",
                        help="burn the modelled work units on real CPU "
                             "instead of sleeping (needs >= workers "
                             "free cores to show scaling)")
    args = parser.parse_args(argv)
    mode = "spin" if args.spin else "sleep"

    if args.sweep or args.backend:
        if args.sweep:
            counts = sorted({int(v) for v in args.sweep.split(",")})
        elif args.backend == "processes":
            counts = [args.workers]
        else:
            counts = []
        document = run_scaling_sweep(counts or [args.workers],
                                     baseline_workers=args.workers,
                                     mode=mode) \
            if counts else None
        if document is None:
            # --backend threads alone: just the baseline measurement.
            updates, wall, ups = run_scaling("threads", args.workers,
                                             mode=mode)
            document = {
                "experiment": "pipeline_process_scaling",
                "baseline": {"backend": "threads",
                             "workers": args.workers,
                             "wall_s": wall, "updates_per_s": ups},
                "points": [],
            }
        base = document["baseline"]
        print(f"threads x{base['workers']}: "
              f"{base['updates_per_s']:,.0f} updates/s (baseline)")
        for point in document["points"]:
            print(f"processes x{point['workers']}: "
                  f"{point['updates_per_s']:,.0f} updates/s "
                  f"({point['speedup']:.2f}x over threads)")
        if args.json_out:
            with open(args.json_out, "w") as handle:
                json.dump(document, handle, indent=1)
            print(f"wrote scaling document to {args.json_out}")
        check_scaling(document)
        print("ok")
        return

    offered, result = run_flood(
        n_vps=8 if QUICK else 12,
        duration_s=300.0 if QUICK else 900.0)
    check_flood(offered, result)
    print(f"flood: {result.metrics.throughput_ups:,.0f} updates/s "
          f"({result.metrics.received} updates, zero loss)")

    result, analytic = run_capacity(DEMAND_UNITS_PER_S * 0.5)
    check_capacity(result, analytic, saturated=True)
    print(f"saturated: empirical loss "
          f"{result.metrics.loss_fraction:.1%} vs analytic "
          f"{analytic:.1%}")

    result, analytic = run_capacity(DEMAND_UNITS_PER_S * 2.0)
    check_capacity(result, analytic, saturated=False)
    print(f"unsaturated: empirical loss "
          f"{result.metrics.loss_fraction:.1%} vs analytic "
          f"{analytic:.1%}")
    print("ok")


if __name__ == "__main__":
    main()
