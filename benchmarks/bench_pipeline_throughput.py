"""Pipeline throughput and empirical Table-1 loss.

The analytic daemon model (``bench_table1_daemon_load``) predicts the
loss fraction from an oversubscription formula; this benchmark
*measures* it on the concurrent runtime.  Per-peer Poisson sessions
are replayed in accelerated wall time against a
:class:`~repro.pipeline.ServiceCostModel` charging the calibrated §8
work units, and the observed ingest drop rate is compared to
``steady_state_loss`` — Table 1's measured column.

Three checks:

* flood throughput — sustained updates/sec with no pacing and no
  capacity model, lossless (``block`` policy), full drain;
* saturated — demand is 2x the modelled CPU, analytic loss 50%; the
  empirical loss must land within ``LOSS_TOLERANCE`` (0.10 absolute,
  see docs/PIPELINE.md for why bursts and the drain tail shift it);
* unsaturated — capacity is 2x demand; the empirical loss must be
  (near) zero.

``REPRO_BENCH_QUICK=1`` shrinks the workload for CI smoke runs; the
module also runs standalone: ``python bench_pipeline_throughput.py``.
"""

import os

try:
    from conftest import print_series
except ImportError:                      # standalone invocation
    def print_series(title, rows):
        print(f"\n=== {title} ===")
        for row in rows:
            print("  " + row)

from repro.bgp.daemon import steady_state_loss
from repro.pipeline import (
    CollectionPipeline,
    PipelineConfig,
    ServiceCostModel,
)
from repro.workload import (
    StreamConfig,
    SyntheticStreamGenerator,
    poisson_session_streams,
    split_by_vp,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Documented tolerance between empirical and analytic loss: Poisson
#: bursts, finite queues and the lossless drain tail all pull the
#: measured fraction a few points off the steady-state formula.
LOSS_TOLERANCE = 0.10

#: The §8 sizing of the capacity experiments (scaled for wall time).
PEERS = 8
RATE_PER_HOUR = 1800.0
STREAM_DURATION_S = 150.0 if QUICK else 600.0
TIME_SCALE = 200.0
#: Everything is retained (accept-all filters), so one update costs
#: parse + filter + write = 51.2 work units.
UNIT_COST = 51.2
DEMAND_UNITS_PER_S = (PEERS * RATE_PER_HOUR / 3600.0
                      * TIME_SCALE * UNIT_COST)


def run_flood(n_vps: int = 12, duration_s: float = 900.0):
    """Lossless full-speed run over a synthetic RIS-like stream."""
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=n_vps, n_prefix_groups=10, duration_s=duration_s, seed=2,
    ))
    _, stream = generator.generate()
    pipeline = CollectionPipeline(PipelineConfig(
        n_shards=4, overflow_policy="block"))
    result = pipeline.run(split_by_vp(stream), timeout=120.0)
    return len(stream), result


def run_capacity(capacity_units_per_s: float, seed: int = 7):
    """Paced, capacity-limited run; returns (result, analytic_loss)."""
    streams = poisson_session_streams(
        PEERS, RATE_PER_HOUR, STREAM_DURATION_S, seed=seed)
    # Small ingest queues: the updates absorbed while the queues first
    # fill are served during the drain tail and would otherwise bias
    # the measured loss low on short runs.
    pipeline = CollectionPipeline(PipelineConfig(
        n_shards=2,
        overflow_policy="drop",
        ingest_queue_capacity=16,
        time_scale=TIME_SCALE,
        cost_model=ServiceCostModel(capacity_units_per_s),
    ))
    result = pipeline.run(streams, timeout=300.0)
    analytic = steady_state_loss(
        PEERS, RATE_PER_HOUR * TIME_SCALE, True,
        retain_fraction=1.0, capacity=capacity_units_per_s,
    )
    return result, analytic.loss_fraction


def check_flood(offered, result):
    metrics = result.metrics
    assert result.accounted
    assert metrics.ingest_dropped == 0
    assert metrics.received == offered
    assert metrics.written == metrics.retained + metrics.discarded
    assert metrics.throughput_ups > 1000.0


def check_capacity(result, analytic, saturated):
    metrics = result.metrics
    # Graceful drain: every enqueued update was processed, never lost.
    assert result.accounted
    assert metrics.retained + metrics.discarded == metrics.processed \
        == metrics.written
    empirical = metrics.loss_fraction
    if saturated:
        assert analytic > 0.3
        assert abs(empirical - analytic) < LOSS_TOLERANCE
    else:
        assert analytic == 0.0
        assert empirical < 0.02


def test_pipeline_flood_throughput(benchmark):
    offered, result = benchmark.pedantic(
        run_flood, rounds=1, iterations=1)
    check_flood(offered, result)
    metrics = result.metrics
    print_series("Pipeline — flood throughput (lossless)", [
        f"offered {metrics.received} updates over "
        f"{metrics.wall_time_s:.2f}s wall",
        f"sustained {metrics.throughput_ups:,.0f} updates/s, "
        f"drops {metrics.ingest_dropped}, "
        f"written {metrics.written}",
    ])


def test_pipeline_empirical_loss_saturated(benchmark):
    result, analytic = benchmark.pedantic(
        run_capacity, args=(DEMAND_UNITS_PER_S * 0.5,),
        rounds=1, iterations=1)
    check_capacity(result, analytic, saturated=True)
    print_series("Pipeline — saturated (demand = 2x capacity)", [
        f"analytic loss {analytic:.1%}  "
        f"empirical loss {result.metrics.loss_fraction:.1%}  "
        f"(tolerance {LOSS_TOLERANCE:.0%})",
        f"received {result.metrics.received}  "
        f"dropped {result.metrics.ingest_dropped}",
    ])


def test_pipeline_empirical_loss_unsaturated(benchmark):
    result, analytic = benchmark.pedantic(
        run_capacity, args=(DEMAND_UNITS_PER_S * 2.0,),
        rounds=1, iterations=1)
    check_capacity(result, analytic, saturated=False)
    print_series("Pipeline — unsaturated (capacity = 2x demand)", [
        f"analytic loss {analytic:.1%}  "
        f"empirical loss {result.metrics.loss_fraction:.1%}",
        f"received {result.metrics.received}  "
        f"dropped {result.metrics.ingest_dropped}",
    ])


def main():
    offered, result = run_flood(
        n_vps=8 if QUICK else 12,
        duration_s=300.0 if QUICK else 900.0)
    check_flood(offered, result)
    print(f"flood: {result.metrics.throughput_ups:,.0f} updates/s "
          f"({result.metrics.received} updates, zero loss)")

    result, analytic = run_capacity(DEMAND_UNITS_PER_S * 0.5)
    check_capacity(result, analytic, saturated=True)
    print(f"saturated: empirical loss "
          f"{result.metrics.loss_fraction:.1%} vs analytic "
          f"{analytic:.1%}")

    result, analytic = run_capacity(DEMAND_UNITS_PER_S * 2.0)
    check_capacity(result, analytic, saturated=False)
    print(f"unsaturated: empirical loss "
          f"{result.metrics.loss_fraction:.1%} vs analytic "
          f"{analytic:.1%}")
    print("ok")


if __name__ == "__main__":
    main()
