"""§12: immediate benefits — three study replications on sampled data.

1. **AS-relationship inference** (after [31]): GILL-sampled data yields
   at least as many inferred relationships as a fixed VP subset (the
   CAIDA-648-VPs analogue) at the same or smaller update budget, with
   unchanged validation accuracy (paper: +16%, TPR stays 97%).
2. **Customer-cone sizes** (after AS-Rank [11]): GILL-sampled paths
   produce cone sizes at least as accurate versus ground truth.
3. **Forged-origin hijack inference** (after DFOH [25]): with
   DFOH-on-all-data as approximate ground truth, DFOH on GILL's sample
   has a better TPR and no worse FPR than DFOH on a random sample of
   equal size (paper: TPR 94% vs 71.5%, FPR 14.4% vs 60.1%).
"""

import random

import pytest
from conftest import print_series

from repro.core import categorize_ases
from repro.sampling import GillScheme, RandomVPs
from repro.simulation import (
    ForgedOriginHijack,
    LinkFailure,
    LinkRestoration,
    SimulatedInternet,
    assign_prefix_ownership,
    random_vp_deployment,
    synthetic_known_topology,
)
from repro.usecases import (
    DFOHDetector,
    compare_to_reference,
    customer_cone_sizes,
    infer_relationships,
    mean_absolute_cone_error,
    paths_from_updates,
    true_cone_sizes,
    validate_relationships,
)

SEED = 71
N_ASES = 300


@pytest.fixture(scope="module")
def world():
    topo = synthetic_known_topology(N_ASES, seed=SEED)
    net = SimulatedInternet(topo.copy(), seed=SEED)
    net.announce_ownership(
        assign_prefix_ownership(topo.ases(), N_ASES + 30, seed=SEED))
    net.deploy_vps(random_vp_deployment(topo, 0.15, seed=SEED + 1))
    rng = random.Random(SEED + 2)
    links = [(a, b) for a, b, _ in net.topo.links()]

    stream = list(net.initial_table_transfer(time=0.0))
    t = 1000.0
    for _ in range(40):
        a, b = links[rng.randrange(len(links))]
        try:
            stream += net.apply_event(LinkFailure(a, b, t))
            stream += net.apply_event(LinkRestoration(a, b, t + 600.0))
        except ValueError:
            pass
        t += 1500.0

    # Hijack phase (for the DFOH replication).
    hijack_start = t
    prefixes = net.prefixes()
    hijacks = []
    stubs = set(topo.stubs())
    stub_prefixes = [p for p in prefixes if net.origin_of(p) in stubs]
    for _ in range(30):
        prefix = stub_prefixes[rng.randrange(len(stub_prefixes))]
        victim = net.origin_of(prefix)
        attacker = rng.choice([x for x in sorted(stubs) if x != victim])
        try:
            stream += net.apply_event(
                ForgedOriginHijack(attacker, prefix, time=t, type_x=1))
            hijacks.append((prefix, attacker))
        except ValueError:
            pass
        t += 1500.0

    stream.sort(key=lambda u: (u.time, u.vp, u.prefix))
    return topo, net, stream, hijack_start, hijacks


@pytest.fixture(scope="module")
def samples(world):
    topo, net, stream, _, _ = world
    categories = categorize_ases(topo)
    gill = GillScheme(seed=SEED, categories=categories,
                      events_per_cell=8, max_anchors=6)
    gill_sample = gill.sample(stream)
    budget = len(gill_sample)
    # The CAIDA-648-VPs analogue: a fixed arbitrary VP subset with the
    # same update budget.
    fixed_sample = RandomVPs(seed=SEED + 5).sample(stream, budget)
    return gill_sample, fixed_sample, budget


def test_sec12_as_relationships(benchmark, world, samples):
    topo, _, _, _, _ = world
    gill_sample, fixed_sample, budget = samples

    def run():
        gill_rel = infer_relationships(paths_from_updates(gill_sample))
        fixed_rel = infer_relationships(paths_from_updates(fixed_sample))
        return gill_rel, fixed_rel

    gill_rel, fixed_rel = benchmark.pedantic(run, rounds=1, iterations=1)
    gill_report = validate_relationships(gill_rel, topo)
    fixed_report = validate_relationships(fixed_rel, topo)

    print_series("§12 — AS-relationship inference", [
        f"fixed-VP sample: {len(fixed_rel)} relationships, "
        f"TPR {fixed_report.true_positive_rate:.1%}",
        f"GILL sample:     {len(gill_rel)} relationships, "
        f"TPR {gill_report.true_positive_rate:.1%}",
        f"gain: {(len(gill_rel) / max(1, len(fixed_rel)) - 1):+.1%} "
        f"(paper: +16%)",
    ])

    # More relationships at the same budget, without losing accuracy.
    assert len(gill_rel) >= len(fixed_rel)
    assert gill_report.true_positive_rate >= \
        fixed_report.true_positive_rate - 0.05
    assert gill_report.true_positive_rate > 0.8


def test_sec12_customer_cones(benchmark, world, samples):
    topo, _, _, _, _ = world
    gill_sample, fixed_sample, _ = samples
    truth = true_cone_sizes(topo)

    def run():
        gill_sizes = customer_cone_sizes(
            infer_relationships(paths_from_updates(gill_sample)))
        fixed_sizes = customer_cone_sizes(
            infer_relationships(paths_from_updates(fixed_sample)))
        return gill_sizes, fixed_sizes

    gill_sizes, fixed_sizes = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    gill_mae = mean_absolute_cone_error(gill_sizes, truth)
    fixed_mae = mean_absolute_cone_error(fixed_sizes, truth)

    # Corrections: ASes where the fixed sample errs but GILL is right.
    corrections = [
        asn for asn, want in truth.items()
        if fixed_sizes.get(asn) not in (None, want)
        and gill_sizes.get(asn) == want
    ]
    print_series("§12 — customer cone sizes", [
        f"fixed-VP sample MAE: {fixed_mae:.2f}",
        f"GILL sample MAE:     {gill_mae:.2f}",
        f"cones corrected by GILL: {len(corrections)} "
        f"(e.g. {sorted(corrections)[:5]})",
    ])

    assert gill_mae <= fixed_mae + 0.25
    assert corrections


def test_sec12_dfoh(benchmark, world, samples):
    topo, net, stream, hijack_start, hijacks = world
    gill_sample, fixed_sample, budget = samples

    training = [u for u in stream if u.time < hijack_start]
    inference_all = [u for u in stream if u.time >= hijack_start]
    inference_gill = [u for u in gill_sample if u.time >= hijack_start]
    inference_rnd = [u for u in fixed_sample if u.time >= hijack_start]

    def run():
        detector = DFOHDetector(suspicion_threshold=0.55)
        detector.train_on_updates(training)
        universe = {c.case_id for c in detector.scan(inference_all)}
        reference = {c.case_id for c in detector.infer(inference_all)}
        found_gill = {c.case_id for c in detector.infer(inference_gill)}
        found_rnd = {c.case_id for c in detector.infer(inference_rnd)}
        return universe, reference, found_gill, found_rnd

    universe, reference, found_gill, found_rnd = benchmark.pedantic(
        run, rounds=1, iterations=1)

    perf_gill = compare_to_reference(found_gill, reference, universe)
    perf_rnd = compare_to_reference(found_rnd, reference, universe)

    print_series("§12 — DFOH replication", [
        f"universe {len(universe)} new-link cases, "
        f"reference {len(reference)} suspicious",
        f"DFOH-GILL: TPR {perf_gill.tpr:.1%}  FPR {perf_gill.fpr:.1%} "
        f"({len(found_gill)} cases)",
        f"DFOH-R:    TPR {perf_rnd.tpr:.1%}  FPR {perf_rnd.fpr:.1%} "
        f"({len(found_rnd)} cases)",
    ])

    assert len(reference) > 5
    # GILL's sample preserves the suspicious cases better than the
    # random sample at the same budget (paper: TPR 94% vs 71.5%).
    assert perf_gill.tpr >= perf_rnd.tpr
    assert perf_gill.tpr > 0.5
    # And introduces no additional false alarms (FPR here counts
    # sub-threshold universe cases flagged from the sample — both
    # detectors use the same scoring, so only coverage differs).
    assert perf_gill.fpr <= perf_rnd.fpr + 0.05
