"""Figure 2: growth in VPs vs. flat AS coverage (2003-2023).

Top panel: number of ASes hosting a RIS / RV VP per year.
Bottom panel: percentage of active ASes hosting a VP — the paper's
headline observation that coverage has been flat for two decades.
"""

from conftest import print_series

from repro.workload.growth import coverage_fraction, growth_series


def _compute():
    return growth_series(2003, 2023)


def test_fig2_vp_growth(benchmark):
    series = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = [
        f"{p.year}: RIS ASes {p.ris_vp_ases:6.0f}  "
        f"RV ASes {p.rv_vp_ases:5.0f}  "
        f"active ASes {p.active_ases:7.0f}  "
        f"coverage {p.coverage:6.2%}"
        for p in series
    ]
    print_series("Fig. 2 — VP growth and coverage", rows)

    # Top panel: both platforms keep adding host ASes.
    ris = [p.ris_vp_ases for p in series]
    rv = [p.rv_vp_ases for p in series]
    assert ris == sorted(ris)
    assert rv == sorted(rv)
    assert ris[-1] > 4 * ris[0]

    # Bottom panel: the paper's point — coverage stays ~1%, flat.
    coverages = [p.coverage for p in series]
    assert max(coverages) < 0.02
    assert max(coverages) / min(coverages) < 1.8   # no real growth

    # The 2023 point matches the §3.1 figure of ~1.1%.
    assert 0.009 < coverage_fraction(2023) < 0.013
