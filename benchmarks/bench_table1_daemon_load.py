"""Table 1: update loss of the BGP daemons on one CPU.

Rows: filters on/off x {average, 99th-percentile} per-peer update rate.
Columns: 100 / 1000 / 10000 peers.  Green cells (no loss) and red cells
(loss) must reproduce the paper's pattern, including the 39% and 32%
cells.
"""

from conftest import print_series

from repro.bgp.daemon import (
    AVG_RATE_PER_HOUR,
    P99_RATE_PER_HOUR,
    simulate_loss,
    steady_state_loss,
    table1_grid,
)


def test_table1_daemon_load(benchmark):
    grid = benchmark.pedantic(table1_grid, rounds=1, iterations=1)

    rows = []
    for filtered in (True, False):
        rows.append("with filters:" if filtered else "without filters:")
        for rate, label in ((AVG_RATE_PER_HOUR, "avg (28K/h)"),
                            (P99_RATE_PER_HOUR, "p99 (241K/h)")):
            cells = [r for r in grid
                     if r.filtered == filtered and r.rate_per_hour == rate]
            cells.sort(key=lambda r: r.peers)
            rows.append(
                f"  {label:14s} " + "  ".join(
                    f"{r.peers:>6d}: {r.label:>5s}" for r in cells)
            )
    print_series("Table 1 — daemon update loss (one CPU)", rows)

    # Paper's cell pattern, with filters (GILL):
    assert steady_state_loss(100, AVG_RATE_PER_HOUR, True).copes
    assert steady_state_loss(1000, AVG_RATE_PER_HOUR, True).copes
    assert steady_state_loss(10000, AVG_RATE_PER_HOUR, True).copes
    assert steady_state_loss(100, P99_RATE_PER_HOUR, True).copes
    assert steady_state_loss(1000, P99_RATE_PER_HOUR, True).copes
    assert not steady_state_loss(10000, P99_RATE_PER_HOUR, True).copes

    # Without filters:
    assert steady_state_loss(100, AVG_RATE_PER_HOUR, False).copes
    assert steady_state_loss(1000, AVG_RATE_PER_HOUR, False).copes
    cell_10k_avg = steady_state_loss(10000, AVG_RATE_PER_HOUR, False)
    assert 0.25 < cell_10k_avg.loss_fraction < 0.55   # paper: 39%
    assert steady_state_loss(100, P99_RATE_PER_HOUR, False).copes
    cell_1k_p99 = steady_state_loss(1000, P99_RATE_PER_HOUR, False)
    assert 0.2 < cell_1k_p99.loss_fraction < 0.45     # paper: 32%
    assert steady_state_loss(10000, P99_RATE_PER_HOUR,
                             False).label == "high"


def test_table1_discrete_event_agrees(benchmark):
    """The queueing simulation agrees with the analytic cells."""
    def run():
        return simulate_loss(10000, AVG_RATE_PER_HOUR, False,
                             duration_s=5.0, seed=42)

    simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = steady_state_loss(10000, AVG_RATE_PER_HOUR,
                                 False).loss_fraction
    print(f"\n10k peers, avg rate, no filters: "
          f"analytic {analytic:.1%}, simulated {simulated:.1%}")
    assert abs(simulated - analytic) < 0.12
