"""Tests for the repro-bgp command-line interface."""

import pytest

from repro.bgp.mrt import read_archive
from repro.cli import build_parser, main


@pytest.fixture
def archive(tmp_path):
    path = str(tmp_path / "stream.mrt.bz2")
    code = main(["generate", path, "--vps", "8", "--groups", "5",
                 "--duration", "600", "--seed", "1",
                 "--include-warmup"])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_archive(self, archive):
        records = read_archive(archive)
        assert len(records) > 0

    def test_deterministic(self, tmp_path):
        a = str(tmp_path / "a.mrt.bz2")
        b = str(tmp_path / "b.mrt.bz2")
        main(["generate", a, "--vps", "6", "--groups", "4",
              "--duration", "300", "--seed", "7"])
        main(["generate", b, "--vps", "6", "--groups", "4",
              "--duration", "300", "--seed", "7"])
        assert read_archive(a) == read_archive(b)

    def test_uncompressed(self, tmp_path):
        path = str(tmp_path / "raw.mrt")
        main(["generate", path, "--vps", "4", "--groups", "3",
              "--duration", "300", "--no-compress"])
        assert read_archive(path, compressed=False)


class TestInspect:
    def test_summary(self, archive, capsys):
        assert main(["inspect", archive]) == 0
        out = capsys.readouterr().out
        assert "updates from 8 VPs" in out

    def test_redundancy_flag(self, archive, capsys):
        assert main(["inspect", archive, "--redundancy"]) == 0
        out = capsys.readouterr().out
        assert "Def. 1" in out and "Def. 3" in out

    def test_empty_archive(self, tmp_path, capsys):
        from repro.bgp.mrt import write_archive
        path = str(tmp_path / "empty.mrt.bz2")
        write_archive([], path)
        assert main(["inspect", path]) == 0
        assert "no updates" in capsys.readouterr().out


class TestSample:
    def test_sampling_and_documents(self, archive, tmp_path, capsys):
        out_path = str(tmp_path / "retained.mrt.bz2")
        filters_path = str(tmp_path / "filters.txt")
        anchors_path = str(tmp_path / "anchors.txt")
        code = main(["sample", archive,
                     "--output", out_path,
                     "--filters-doc", filters_path,
                     "--anchors-doc", anchors_path,
                     "--events-per-cell", "5"])
        assert code == 0
        retained = read_archive(out_path)
        original = read_archive(archive)
        assert 0 < len(retained) <= len(original)
        with open(filters_path) as handle:
            assert "default accept" in handle.read()
        with open(anchors_path) as handle:
            assert handle.read().strip()


class TestOrchestrate:
    def test_control_loop(self, archive, capsys):
        code = main(["orchestrate", archive,
                     "--refresh-interval", "300",
                     "--mirror-window", "200",
                     "--events-per-cell", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "component #1 runs:" in out


class TestPipeline:
    def test_flood_run(self, archive, capsys):
        code = main(["pipeline", archive, "--shards", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline metrics" in out
        assert "ingest-dropped 0" in out

    def test_with_filters_validation_and_archive(self, archive, tmp_path,
                                                 capsys):
        out_dir = str(tmp_path / "segments")
        code = main(["pipeline", archive,
                     "--train-filters", "--validate",
                     "--shard-by", "prefix",
                     "--archive-dir", out_dir,
                     "--per-session"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trained" in out
        assert "wrote" in out and "segments" in out
        assert "session" in out

    def test_empty_archive(self, tmp_path, capsys):
        from repro.bgp.mrt import write_archive
        path = str(tmp_path / "empty.mrt.bz2")
        write_archive([], path)
        assert main(["pipeline", path]) == 0
        assert "no updates" in capsys.readouterr().out


class TestInfoCommands:
    def test_growth(self, capsys):
        assert main(["growth", "--start", "2020", "--end", "2023"]) == 0
        out = capsys.readouterr().out
        assert "2023" in out and "coverage" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        assert "[C1]" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestOrchestrateStatus:
    def test_status_page(self, archive, capsys):
        code = main(["orchestrate", archive,
                     "--refresh-interval", "300",
                     "--mirror-window", "200",
                     "--events-per-cell", "4",
                     "--status", "--validate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "platform status" in out
        assert "honesty" in out

    def test_output_archive_written(self, archive, tmp_path, capsys):
        out_path = str(tmp_path / "kept.mrt.bz2")
        code = main(["orchestrate", archive,
                     "--refresh-interval", "300",
                     "--mirror-window", "200",
                     "--events-per-cell", "4",
                     "--output", out_path])
        assert code == 0
        assert read_archive(out_path)


class TestServe:
    def archive_dir(self, archive, tmp_path):
        out_dir = str(tmp_path / "segments")
        assert main(["pipeline", archive, "--archive-dir", out_dir,
                     "--index"]) == 0
        return out_dir

    def test_smoke_passes_on_pipeline_archive(self, archive, tmp_path,
                                              capsys):
        out_dir = self.archive_dir(archive, tmp_path)
        capsys.readouterr()
        assert main(["serve", out_dir, "--port", "0", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "serving" in out and "watermark" in out
        assert "FAIL" not in out
        for endpoint in ("/updates", "/vps", "/rib", "/moas",
                         "/hijacks", "/status"):
            assert endpoint in out

    def test_empty_directory_refused(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["serve", str(empty), "--port", "0"]) == 2
        assert "no archive segments" in capsys.readouterr().err

    def test_pipeline_index_flag_builds_indexes(self, archive, tmp_path):
        import os
        out_dir = self.archive_dir(archive, tmp_path)
        segments = [n for n in os.listdir(out_dir)
                    if n.startswith("updates.")
                    and not n.endswith(".idx")]
        indexes = [n for n in os.listdir(out_dir) if n.endswith(".idx")]
        assert segments and len(indexes) == len(segments)

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "somedir"])
        assert args.port == 8480 and args.workers == 4
        assert args.cache_size == 128 and not args.smoke


class TestEventsCLI:
    @pytest.fixture
    def event_archive(self, tmp_path):
        stream = str(tmp_path / "showcase.mrt.bz2")
        assert main(["generate", stream, "--scenario", "monitoring"]) == 0
        directory = str(tmp_path / "arch")
        assert main(["pipeline", stream, "--archive-dir", directory,
                     "--checkpoint", "--index", "--events"]) == 0
        return directory

    def test_generate_monitoring_scenario(self, tmp_path, capsys):
        path = str(tmp_path / "mon.mrt.bz2")
        assert main(["generate", path, "--scenario", "monitoring"]) == 0
        out = capsys.readouterr().out
        assert "monitoring showcase" in out
        assert read_archive(path)

    def test_pipeline_events_writes_journal(self, event_archive,
                                            capsys):
        import os
        assert os.path.exists(os.path.join(event_archive,
                                           "events.jsonl"))

    def test_events_requires_archive_dir(self, tmp_path, capsys):
        stream = str(tmp_path / "s.mrt.bz2")
        main(["generate", stream, "--duration", "300"])
        assert main(["pipeline", stream, "--events"]) == 2

    def test_events_table_and_report(self, event_archive, capsys):
        assert main(["events", event_archive]) == 0
        out = capsys.readouterr().out
        assert "origin_hijack" in out and "event(s)" in out
        assert main(["events", event_archive, "--type", "moas",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "MOAS conflict" in out and "timeline:" in out

    def test_events_single_id(self, event_archive, capsys):
        assert main(["events", event_archive, "--id",
                     "ev-000001"]) == 0
        out = capsys.readouterr().out
        assert "ev-000001" in out
        assert main(["events", event_archive, "--id",
                     "ev-999999"]) == 1

    def test_events_bad_filters(self, event_archive, tmp_path, capsys):
        assert main(["events", event_archive, "--type", "bogus"]) == 2
        assert main(["events", str(tmp_path / "nope")]) == 2

    def test_serve_smoke_with_events(self, event_archive, capsys):
        assert main(["serve", event_archive, "--port", "0",
                     "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "event store: " in out
        assert "ok 200 /events " in out

    def test_serve_no_events_flag(self, event_archive, capsys):
        assert main(["serve", event_archive, "--port", "0", "--smoke",
                     "--no-events"]) == 0
        out = capsys.readouterr().out
        assert "event store" not in out
        assert "ok 404 /events " in out


class TestScrubCLI:
    @pytest.fixture
    def segment_dir(self, archive, tmp_path):
        out_dir = str(tmp_path / "segments")
        assert main(["pipeline", archive, "--archive-dir", out_dir,
                     "--checkpoint", "--index"]) == 0
        return out_dir

    def test_clean_archive_scrubs_clean(self, segment_dir, capsys):
        assert main(["scrub", segment_dir, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 quarantined" in out and "quarantined " not in out

    def test_rot_is_reported_and_strict_fails(self, segment_dir,
                                              capsys):
        import os

        from repro.pipeline.faults import corrupt_bitflip
        victim = sorted(n for n in os.listdir(segment_dir)
                        if n.startswith("updates.")
                        and not n.endswith(".idx"))[0]
        corrupt_bitflip(os.path.join(segment_dir, victim))
        assert main(["scrub", segment_dir]) == 0   # default: report only
        out = capsys.readouterr().out
        assert f"quarantined {victim} (crc32)" in out
        assert "quarantine directory:" in out
        # The rot is already quarantined; strict now passes clean.
        assert main(["scrub", segment_dir, "--strict"]) == 0
        assert "already quarantined" in capsys.readouterr().out

    def test_strict_exits_nonzero_on_fresh_rot(self, segment_dir):
        import os

        from repro.pipeline.faults import corrupt_truncate
        victim = sorted(n for n in os.listdir(segment_dir)
                        if n.startswith("updates.")
                        and not n.endswith(".idx"))[-1]
        corrupt_truncate(os.path.join(segment_dir, victim))
        assert main(["scrub", segment_dir, "--strict"]) == 1


class TestGillCLI:
    @pytest.fixture
    def overshoot(self, tmp_path):
        path = str(tmp_path / "overshoot.mrt")
        code = main(["generate", path, "--scenario", "overshoot",
                     "--vps", "12", "--duration", "600",
                     "--seed", "3", "--no-compress"])
        assert code == 0
        return path

    def test_generate_overshoot_is_deterministic(self, tmp_path,
                                                 capsys):
        a = str(tmp_path / "a.mrt")
        b = str(tmp_path / "b.mrt")
        for path in (a, b):
            assert main(["generate", path, "--scenario", "overshoot",
                         "--vps", "10", "--duration", "400",
                         "--seed", "9", "--no-compress"]) == 0
        assert read_archive(a, compressed=False) \
            == read_archive(b, compressed=False)
        assert "overshoot scenario" in capsys.readouterr().out

    def test_pipeline_gill_filters_and_journals(self, overshoot,
                                                tmp_path, capsys):
        import json
        import os

        out_dir = str(tmp_path / "filtered")
        code = main(["pipeline", overshoot, "--no-compress",
                     "--archive-dir", out_dir, "--checkpoint",
                     "--gill", "--filter-def", "1",
                     "--keep", "vp10000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gill (definition 1): dropped" in out
        journal = os.path.join(out_dir, "gill.jsonl")
        with open(journal) as handle:
            records = [json.loads(line) for line in handle]
        assert records
        assert all(r["definition"] == 1 for r in records)
        assert all("vp10000" in r["anchors"] for r in records)
        assert sum(r["dropped"] for r in records) > 0

    def test_gill_requires_archive_dir(self, overshoot, capsys):
        assert main(["pipeline", overshoot, "--no-compress",
                     "--gill"]) == 2
        assert "--gill requires --archive-dir" \
            in capsys.readouterr().err

    def test_keep_requires_gill(self, overshoot, capsys):
        assert main(["pipeline", overshoot, "--no-compress",
                     "--keep", "vp10000"]) == 2
        assert "--keep" in capsys.readouterr().err

    def test_serve_smoke_covers_gill_vps(self, overshoot, tmp_path,
                                         capsys):
        out_dir = str(tmp_path / "filtered")
        assert main(["pipeline", overshoot, "--no-compress",
                     "--archive-dir", out_dir, "--checkpoint",
                     "--gill"]) == 0
        capsys.readouterr()
        assert main(["serve", out_dir, "--no-compress", "--port", "0",
                     "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "gill journal:" in out
        assert "ok 200 /vps?sort=value" in out
