"""Tests for VP deployment and scenario execution."""

import pytest

from repro.bgp.prefix import Prefix
from repro.simulation import (
    LinkFailure,
    LinkRestoration,
    SimulatedInternet,
    random_vp_deployment,
    run_events,
    stream_from_records,
    synthetic_known_topology,
)

P1 = Prefix.parse("10.0.0.0/24")


@pytest.fixture(scope="module")
def topo():
    return synthetic_known_topology(80, seed=6)


class TestRandomDeployment:
    def test_coverage_respected(self, topo):
        vps = random_vp_deployment(topo, 0.25, seed=1)
        assert len(vps) == round(0.25 * len(topo))

    def test_minimum_one_vp(self, topo):
        assert len(random_vp_deployment(topo, 0.001, seed=1)) == 1

    def test_full_coverage(self, topo):
        assert random_vp_deployment(topo, 1.0, seed=1) == topo.ases()

    def test_always_include(self, topo):
        anchor_as = topo.ases()[0]
        vps = random_vp_deployment(topo, 0.1, seed=1,
                                   always_include=[anchor_as])
        assert anchor_as in vps

    def test_invalid_coverage(self, topo):
        with pytest.raises(ValueError):
            random_vp_deployment(topo, 0.0)
        with pytest.raises(ValueError):
            random_vp_deployment(topo, 1.5)

    def test_deterministic(self, topo):
        assert random_vp_deployment(topo, 0.3, seed=7) == \
            random_vp_deployment(topo, 0.3, seed=7)


class TestRunEvents:
    def test_records_in_time_order(self, topo):
        net = SimulatedInternet(topo.copy(), seed=1)
        origin = topo.ases()[5]
        net.announce_prefix(P1, origin)
        net.deploy_vps(random_vp_deployment(topo, 0.3, seed=2))
        routes = net.routes_for(P1)
        # Find a link some VP's route uses so events produce updates.
        used = None
        for asn in net.vp_ases:
            route = routes.get(asn)
            if route and len(route.path) >= 2:
                used = (route.path[0], route.path[1])
                break
        assert used is not None
        events = [
            LinkRestoration(*used, time=2000.0),
            LinkFailure(*used, time=1000.0),
        ]
        records = run_events(net, events)
        assert isinstance(records[0].event, LinkFailure)
        assert records[0].observed
        stream = stream_from_records(records)
        assert [u.time for u in stream] == sorted(u.time for u in stream)

    def test_observing_vps(self, topo):
        net = SimulatedInternet(topo.copy(), seed=1)
        net.announce_prefix(P1, topo.ases()[5])
        net.deploy_vps(random_vp_deployment(topo, 0.3, seed=2))
        routes = net.routes_for(P1)
        asn = next(a for a in net.vp_ases
                   if routes.get(a) and len(routes[a].path) >= 2)
        link = (routes[asn].path[0], routes[asn].path[1])
        records = run_events(net, [LinkFailure(*link, time=1000.0)])
        assert f"vp{asn}" in records[0].observing_vps()
