"""Tests for the prebuilt simulation scenarios."""

import pytest

from repro.simulation.scenarios import (
    Scenario,
    build_world,
    failure_churn,
    hijack_campaign,
    merge_scenarios,
)
from repro.usecases import PathChange, localize_failure, visible_hijacks


@pytest.fixture(scope="module")
def world():
    return build_world(n_ases=90, coverage=0.3, seed=5)


class TestBuildWorld:
    def test_world_is_announced_and_deployed(self, world):
        assert len(world.prefixes()) >= 90
        assert len(world.vp_ases) == 27

    def test_prefix_count_scales(self):
        net = build_world(60, 0.2, seed=1, prefixes_per_as=2.0)
        assert len(net.prefixes()) == 120


class TestFailureChurn:
    def test_stream_sorted_and_nonempty(self, world):
        scenario = failure_churn(world, count=10, seed=2)
        times = [u.time for u in scenario.stream]
        assert times == sorted(times)
        assert scenario.stream

    def test_ground_truth_localizable(self):
        net = build_world(90, 0.4, seed=6)
        scenario = failure_churn(net, count=8, seed=3,
                                 record_ground_truth=True)
        assert scenario.failures
        localized = 0
        for record in scenario.failures:
            changes = [
                PathChange(record.prior_paths[(u.vp, u.prefix)],
                           () if u.is_withdrawal else u.as_path)
                for u in record.updates
                if (u.vp, u.prefix) in record.prior_paths
            ]
            if localize_failure(changes, record.link):
                localized += 1
        assert localized > 0

    def test_no_ground_truth_by_default(self, world):
        scenario = failure_churn(world, count=3, seed=4)
        assert scenario.failures == []


class TestHijackCampaign:
    def test_hijacks_recorded_and_visible(self):
        net = build_world(90, 0.4, seed=7)
        scenario = hijack_campaign(net, count=10, seed=8,
                                   start_time=1000.0)
        assert scenario.hijacks
        seen = visible_hijacks(scenario.stream, scenario.hijack_pairs)
        assert seen   # at 40% coverage most hijacks reach some VP

    def test_stub_parties_only(self):
        net = build_world(90, 0.3, seed=9)
        stubs = set(net.topo.stubs())
        scenario = hijack_campaign(net, count=8, seed=10,
                                   start_time=1000.0,
                                   stub_parties_only=True)
        for record in scenario.hijacks:
            assert record.attacker in stubs
            assert record.victim in stubs

    def test_type2_campaign(self):
        net = build_world(90, 0.3, seed=11)
        scenario = hijack_campaign(net, count=5, seed=12,
                                   start_time=1000.0, type_x=2)
        for record in scenario.hijacks:
            assert record.type_x == 2


class TestMerge:
    def test_merge_same_world(self):
        net = build_world(90, 0.3, seed=13)
        churn = failure_churn(net, count=5, seed=14)
        attacks = hijack_campaign(net, count=5, seed=15,
                                  start_time=20_000.0)
        merged = merge_scenarios(churn, attacks)
        assert len(merged.stream) == \
            len(churn.stream) + len(attacks.stream)
        assert merged.hijacks == attacks.hijacks
        times = [u.time for u in merged.stream]
        assert times == sorted(times)

    def test_merge_different_worlds_rejected(self):
        a = failure_churn(build_world(60, 0.3, seed=16), 2, seed=17)
        b = failure_churn(build_world(60, 0.3, seed=18), 2, seed=19)
        with pytest.raises(ValueError):
            merge_scenarios(a, b)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_scenarios()
