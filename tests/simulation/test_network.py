"""Tests for the SimulatedInternet event engine."""

import pytest

from repro.bgp.prefix import Prefix
from repro.simulation.events import (
    CommunityRetag,
    ForgedOriginHijack,
    HijackEnd,
    LinkFailure,
    LinkRestoration,
    OriginChange,
)
from repro.simulation.network import (
    ACTION_COMMUNITY_BASE,
    SimulatedInternet,
    assign_prefix_ownership,
    vp_asn,
    vp_name,
)
from repro.simulation.topology import ASTopology

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P3 = Prefix.parse("10.0.2.0/24")


@pytest.fixture
def net():
    """The paper's Fig. 5 scenario: AS4 owns p1, p2; AS6 owns p3."""
    topo = ASTopology()
    topo.add_p2p(1, 2)
    topo.add_c2p(4, 1)
    topo.add_c2p(4, 2)
    topo.add_c2p(3, 1)
    topo.add_c2p(6, 2)
    topo.add_c2p(5, 2)
    topo.add_c2p(7, 5)
    topo.add_p2p(5, 6)
    net = SimulatedInternet(topo, seed=42)
    net.announce_prefix(P1, 4)
    net.announce_prefix(P2, 4)
    net.announce_prefix(P3, 6)
    net.deploy_vps([2, 6, 3, 5])
    return net


class TestNames:
    def test_roundtrip(self):
        assert vp_asn(vp_name(123)) == 123

    def test_bad_name(self):
        with pytest.raises(ValueError):
            vp_asn("router7")


class TestSetup:
    def test_announce_unknown_as(self, net):
        with pytest.raises(ValueError):
            net.announce_prefix(Prefix.parse("9.9.9.0/24"), 99)

    def test_deploy_unknown_as(self, net):
        with pytest.raises(ValueError):
            net.deploy_vps([1, 99])

    def test_origin_of(self, net):
        assert net.origin_of(P1) == 4
        assert net.origin_of(P3) == 6

    def test_prefixes_sorted(self, net):
        assert net.prefixes() == [P1, P2, P3]


class TestRouting:
    def test_shared_routing_tree(self, net):
        """Prefixes of the same origin share one routing tree."""
        assert net.routes_for(P1) is net.routes_for(P2)
        assert net.routes_for(P1) is not net.routes_for(P3)

    def test_vp_ribs_full_feeders(self, net):
        ribs = net.vp_ribs()
        assert set(ribs) == {"vp2", "vp3", "vp5", "vp6"}
        for routes in ribs.values():
            assert len(routes) == 3   # all VPs see all prefixes

    def test_initial_table_transfer(self, net):
        updates = net.initial_table_transfer()
        assert len(updates) == 12
        assert all(not u.is_withdrawal for u in updates)

    def test_links_observed_by_vps_subset_of_topology(self, net):
        observed = net.links_observed_by_vps()
        all_links = {tuple(sorted((a, b))) for a, b, _ in net.topo.links()}
        assert observed <= all_links
        assert observed     # not empty


class TestLinkFailure:
    def test_failure_generates_updates_for_owned_prefixes(self, net):
        updates = net.apply_event(LinkFailure(2, 4, time=1000.0))
        # p1 and p2 (owned by AS4) reroute; p3 is unaffected.
        prefixes = {u.prefix for u in updates}
        assert prefixes == {P1, P2}

    def test_updates_within_correlation_window(self, net):
        updates = net.apply_event(LinkFailure(2, 4, time=1000.0))
        assert all(1000.0 < u.time < 1100.0 for u in updates)

    def test_rerouted_path_avoids_failed_link(self, net):
        net.apply_event(LinkFailure(2, 4, time=1000.0))
        routes = net.routes_for(P1)
        for route in routes.values():
            for i in range(len(route.path) - 1):
                assert {route.path[i], route.path[i + 1]} != {2, 4}

    def test_double_failure_rejected(self, net):
        net.apply_event(LinkFailure(2, 4, time=1000.0))
        with pytest.raises(ValueError):
            net.apply_event(LinkFailure(4, 2, time=2000.0))

    def test_restoration_restores_routes(self, net):
        before = {a: r.path for a, r in net.routes_for(P1).items()}
        net.apply_event(LinkFailure(2, 4, time=1000.0))
        updates = net.apply_event(LinkRestoration(2, 4, time=2000.0))
        after = {a: r.path for a, r in net.routes_for(P1).items()}
        assert before == after
        assert updates   # VPs saw the paths flip back

    def test_restoring_unfailed_link_rejected(self, net):
        with pytest.raises(ValueError):
            net.apply_event(LinkRestoration(2, 4, time=1.0))

    def test_unused_link_failure_silent(self, net):
        """Failing a link no VP route traverses produces no updates."""
        # Only stub AS7 (which hosts no VP) sits behind the 7-5 link.
        updates = net.apply_event(LinkFailure(7, 5, time=1000.0))
        assert updates == []

    def test_peer_link_failure_reroutes_edge_vp(self, net):
        """AS5 prefers its p2p route to AS6; failing 5-6 reroutes vp5."""
        updates = net.apply_event(LinkFailure(5, 6, time=1000.0))
        by_vp = {u.vp: u for u in updates}
        assert set(by_vp) == {"vp5"}
        assert by_vp["vp5"].as_path == (5, 2, 6)


class TestHijack:
    def test_type1_hijack_visible_to_nearby_vp(self, net):
        updates = net.apply_event(
            ForgedOriginHijack(7, P3, time=500.0, type_x=1))
        # VP5 is next to the attacker and switches to the forged route.
        by_vp = {u.vp: u for u in updates}
        assert "vp5" in by_vp
        assert by_vp["vp5"].as_path == (5, 7, 6)
        # The forged route still ends at the legitimate origin.
        assert by_vp["vp5"].origin_as == 6

    def test_type2_hijack_longer_path(self, net):
        updates = net.apply_event(
            ForgedOriginHijack(7, P3, time=500.0, type_x=2))
        for u in updates:
            if 7 in u.as_path:
                assert len(u.as_path) >= 3

    def test_double_hijack_rejected(self, net):
        net.apply_event(ForgedOriginHijack(7, P3, time=500.0))
        with pytest.raises(ValueError):
            net.apply_event(ForgedOriginHijack(7, P3, time=600.0))

    def test_hijack_end_restores(self, net):
        before = {a: r.path for a, r in net.routes_for(P3).items()}
        net.apply_event(ForgedOriginHijack(7, P3, time=500.0))
        net.apply_event(HijackEnd(7, P3, time=900.0))
        after = {a: r.path for a, r in net.routes_for(P3).items()}
        assert before == after

    def test_hijack_end_without_hijack_rejected(self, net):
        with pytest.raises(ValueError):
            net.apply_event(HijackEnd(7, P3, time=1.0))

    def test_explicit_intermediates(self, net):
        net.apply_event(ForgedOriginHijack(
            7, P3, time=1.0, type_x=2, intermediate=(2,)))
        routes = net.routes_for(P3)
        hijacked = [r for r in routes.values() if r.path[-3:] == (7, 2, 6)]
        assert hijacked

    def test_bad_intermediate_count(self):
        with pytest.raises(ValueError):
            ForgedOriginHijack(7, P3, time=1.0, type_x=1, intermediate=(2,))


class TestOriginChange:
    def test_origin_change_moves_prefix(self, net):
        updates = net.apply_event(OriginChange(P3, new_origin=3, time=10.0))
        assert net.origin_of(P3) == 3
        assert updates
        for u in updates:
            if not u.is_withdrawal:
                assert u.origin_as == 3

    def test_unknown_new_origin(self, net):
        with pytest.raises(ValueError):
            net.apply_event(OriginChange(P3, new_origin=99, time=10.0))


class TestCommunityRetag:
    def test_retag_produces_unchanged_path_updates(self, net):
        before = {vp: {r.prefix: r.as_path for r in routes}
                  for vp, routes in net.vp_ribs().items()}
        updates = net.apply_event(CommunityRetag(P3, time=10.0, tag=5))
        assert updates
        for u in updates:
            assert u.as_path == before[u.vp][P3]

    def test_action_retag_sets_action_community(self, net):
        updates = net.apply_event(
            CommunityRetag(P3, time=10.0, tag=5, action=True))
        origin = net.origin_of(P3)
        for u in updates:
            values = {v for a, v in u.communities if a == origin}
            assert any(v >= ACTION_COMMUNITY_BASE for v in values)

    def test_retag_persists_in_later_updates(self, net):
        net.apply_event(CommunityRetag(P3, time=10.0, tag=5, action=True))
        updates = net.apply_event(
            ForgedOriginHijack(7, P3, time=500.0, type_x=1))
        origin = 6
        tagged = [u for u in updates
                  if any(a == origin and v >= ACTION_COMMUNITY_BASE
                         for a, v in u.communities)]
        assert tagged


class TestAssignPrefixOwnership:
    def test_every_as_gets_a_prefix(self):
        ownership = assign_prefix_ownership([1, 2, 3, 4], 10, seed=1)
        assert set(ownership.values()) == {1, 2, 3, 4}

    def test_total_count(self):
        ownership = assign_prefix_ownership(list(range(1, 21)), 100, seed=2)
        assert len(ownership) == 100

    def test_distinct_prefixes(self):
        ownership = assign_prefix_ownership(list(range(1, 21)), 60, seed=3)
        assert len(set(ownership)) == 60

    def test_heavy_tail(self):
        ownership = assign_prefix_ownership(list(range(1, 101)), 1000, seed=4)
        counts = {}
        for origin in ownership.values():
            counts[origin] = counts.get(origin, 0) + 1
        assert max(counts.values()) >= 10

    def test_too_few_prefixes_rejected(self):
        with pytest.raises(ValueError):
            assign_prefix_ownership([1, 2, 3], 2, seed=5)
