"""Tests for AS topologies and generators."""

import pytest

from repro.simulation.policies import Relationship
from repro.simulation.topology import (
    ASTopology,
    TopologyError,
    hyperbolic_topology,
    prune_leaves,
    synthetic_known_topology,
)


@pytest.fixture
def small_topo():
    """The 7-AS topology of the paper's Fig. 5.

    Arrows in the figure are c2p (customer -> provider), lines are p2p:
    4->1, 4->2 (via the failing link), 1<->2 p2p? — we encode a compatible
    hierarchy: 1 and 2 are providers of 4; 3 peers with 4; etc.
    """
    topo = ASTopology()
    topo.add_c2p(4, 1)
    topo.add_c2p(4, 2)
    topo.add_c2p(3, 1)
    topo.add_c2p(6, 2)
    topo.add_c2p(5, 2)
    topo.add_c2p(7, 5)
    topo.add_p2p(1, 2)
    topo.add_p2p(5, 6)
    return topo


class TestASTopology:
    def test_relationship_views(self, small_topo):
        assert small_topo.relationship(4, 1) is Relationship.PROVIDER
        assert small_topo.relationship(1, 4) is Relationship.CUSTOMER
        assert small_topo.relationship(1, 2) is Relationship.PEER

    def test_no_duplicate_links(self, small_topo):
        with pytest.raises(TopologyError):
            small_topo.add_p2p(4, 1)
        with pytest.raises(TopologyError):
            small_topo.add_c2p(1, 2)

    def test_no_self_links(self):
        topo = ASTopology()
        with pytest.raises(TopologyError):
            topo.add_c2p(1, 1)
        with pytest.raises(TopologyError):
            topo.add_p2p(2, 2)

    def test_degree_and_neighbors(self, small_topo):
        assert small_topo.degree(2) == 4
        assert small_topo.neighbors(2) == {1, 4, 5, 6}

    def test_links_reported_once(self, small_topo):
        links = small_topo.links()
        assert len(links) == 8
        assert len(small_topo.p2p_links()) == 2
        assert len(small_topo.c2p_links()) == 6

    def test_remove_link(self, small_topo):
        rel = small_topo.remove_link(4, 2)
        assert rel is Relationship.PROVIDER
        assert not small_topo.has_link(4, 2)

    def test_remove_missing_link(self, small_topo):
        with pytest.raises(TopologyError):
            small_topo.remove_link(3, 7)

    def test_remove_as(self, small_topo):
        small_topo.remove_as(2)
        assert 2 not in small_topo
        assert not small_topo.has_link(4, 2)
        assert 4 in small_topo

    def test_stubs_and_transits(self, small_topo):
        assert small_topo.stubs() == [3, 4, 6, 7]
        assert small_topo.transit_ases() == [1, 2, 5]

    def test_tier1(self, small_topo):
        assert small_topo.tier1_ases() == [1, 2]

    def test_customer_cone(self, small_topo):
        assert small_topo.customer_cone(2) == {2, 4, 5, 6, 7}
        assert small_topo.customer_cone(7) == {7}

    def test_hierarchy_acyclic(self, small_topo):
        assert small_topo.check_hierarchy_acyclic()

    def test_hierarchy_cycle_detected(self):
        topo = ASTopology()
        topo.add_c2p(1, 2)
        topo.add_c2p(2, 3)
        topo.add_c2p(3, 1)
        assert not topo.check_hierarchy_acyclic()

    def test_copy_is_independent(self, small_topo):
        clone = small_topo.copy()
        clone.remove_as(2)
        assert 2 in small_topo

    def test_average_degree(self, small_topo):
        assert small_topo.average_degree() == pytest.approx(16 / 7)


class TestSyntheticKnownTopology:
    def test_size(self):
        topo = synthetic_known_topology(200, seed=1)
        assert len(topo) == 200

    def test_acyclic_hierarchy(self):
        topo = synthetic_known_topology(300, seed=2)
        assert topo.check_hierarchy_acyclic()

    def test_every_nontier1_has_provider(self):
        topo = synthetic_known_topology(200, seed=3)
        tier1 = {1, 2, 3}
        for asn in topo.ases():
            if asn not in tier1:
                assert topo.providers(asn)

    def test_has_p2p_links(self):
        topo = synthetic_known_topology(300, seed=4)
        assert len(topo.p2p_links()) > 10

    def test_deterministic_with_seed(self):
        a = synthetic_known_topology(100, seed=5)
        b = synthetic_known_topology(100, seed=5)
        assert set(a.links()) == set(b.links())

    def test_heavy_tail(self):
        """A few ASes should have much higher degree than the median."""
        topo = synthetic_known_topology(500, seed=6)
        degrees = sorted(topo.degree(a) for a in topo.ases())
        assert degrees[-1] > 10 * degrees[len(degrees) // 2]

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            synthetic_known_topology(3)


class TestHyperbolicTopology:
    def test_size_and_connectivity(self):
        topo = hyperbolic_topology(150, seed=1)
        assert len(topo) == 150
        # Every AS participates in the graph.
        assert all(topo.degree(a) > 0 for a in topo.ases())

    def test_average_degree_near_target(self):
        topo = hyperbolic_topology(400, avg_degree=6.1, seed=2)
        assert 3.5 < topo.average_degree() < 9.5

    def test_three_tier1s_fully_meshed(self):
        topo = hyperbolic_topology(150, seed=3)
        tier1 = topo.tier1_ases()
        assert len(tier1) == 3
        for a in tier1:
            for b in tier1:
                if a < b:
                    assert topo.relationship(a, b) is Relationship.PEER

    def test_acyclic_hierarchy(self):
        topo = hyperbolic_topology(200, seed=4)
        assert topo.check_hierarchy_acyclic()

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            hyperbolic_topology(2)


class TestPruneLeaves:
    def test_prunes_to_target(self):
        topo = synthetic_known_topology(300, seed=7)
        pruned = prune_leaves(topo, 100)
        assert len(pruned) <= 100

    def test_original_untouched(self):
        topo = synthetic_known_topology(100, seed=8)
        prune_leaves(topo, 50)
        assert len(topo) == 100

    def test_pruned_still_acyclic(self):
        topo = synthetic_known_topology(300, seed=9)
        pruned = prune_leaves(topo, 120)
        assert pruned.check_hierarchy_acyclic()

    def test_noop_when_already_small(self):
        topo = synthetic_known_topology(50, seed=10)
        assert len(prune_leaves(topo, 200)) == 50
