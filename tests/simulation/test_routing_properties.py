"""Property-based tests on Gao-Rexford routing invariants.

Random topologies are generated via the library's own generators
(seeded by hypothesis), and the fundamental properties of
policy-compliant routing are asserted on every propagation result.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.policies import Relationship, RouteClass
from repro.simulation.routing import Announcement, propagate
from repro.simulation.topology import (
    hyperbolic_topology,
    synthetic_known_topology,
)

topo_params = st.tuples(
    st.integers(min_value=10, max_value=60),     # size
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _check_invariants(topo, origin, routes):
    for asn, route in routes.items():
        path = route.path
        # Paths start locally and end at the origin.
        assert path[0] == asn
        assert path[-1] == origin
        # No loops.
        assert len(set(path)) == len(path)
        # Every hop is a real link.
        for i in range(len(path) - 1):
            assert topo.has_link(path[i], path[i + 1]), \
                f"phantom link {path[i]}-{path[i + 1]}"
        # Valley-free: never up (or sideways) after going down.
        descended = False
        peered = False
        for i in range(len(path) - 1):
            rel = topo.relationship(path[i], path[i + 1])
            if rel is Relationship.CUSTOMER:      # going down
                descended = True
            elif rel is Relationship.PEER:
                assert not descended and not peered, \
                    f"peer link after descent in {path}"
                peered = True
            else:                                  # going up
                assert not descended and not peered, \
                    f"valley in {path}"
        # The route class matches the first hop's relationship.
        if len(path) == 1:
            assert route.route_class is RouteClass.SELF
        else:
            rel = topo.relationship(asn, path[1])
            expected = RouteClass.from_relationship(rel)
            assert route.route_class is expected


@settings(max_examples=15, deadline=None)
@given(params=topo_params)
def test_pa_topology_routing_invariants(params):
    size, seed = params
    topo = synthetic_known_topology(size, seed=seed)
    origin = topo.ases()[seed % len(topo)]
    routes = propagate(topo, [Announcement.origination(origin)])
    _check_invariants(topo, origin, routes)
    # Connectivity: the PA topology is connected and GR always gives
    # every AS a route to every origin through the provider hierarchy.
    assert set(routes) == set(topo.ases())


@settings(max_examples=8, deadline=None)
@given(params=topo_params)
def test_hyperbolic_topology_routing_invariants(params):
    size, seed = params
    topo = hyperbolic_topology(max(10, size), seed=seed)
    origin = topo.ases()[seed % len(topo)]
    routes = propagate(topo, [Announcement.origination(origin)])
    _check_invariants(topo, origin, routes)


@settings(max_examples=10, deadline=None)
@given(params=topo_params,
       attacker_pick=st.integers(min_value=0, max_value=10_000))
def test_hijack_routing_invariants(params, attacker_pick):
    """With a forged announcement in play every selected route still
    satisfies the policy invariants up to the announcing AS."""
    size, seed = params
    topo = synthetic_known_topology(size, seed=seed)
    ases = topo.ases()
    victim = ases[seed % len(ases)]
    attacker = ases[attacker_pick % len(ases)]
    if attacker == victim:
        return
    routes = propagate(topo, [
        Announcement.origination(victim),
        Announcement.forged_origin(attacker, victim),
    ])
    for asn, route in routes.items():
        path = route.path
        assert path[0] == asn
        assert path[-1] == victim   # forged or not, it claims the victim
        # The real part of the path (up to the announcing AS) uses
        # only real links.
        for i in range(len(path) - 1):
            if path[i + 1] in (victim,) and path[i] == attacker:
                break   # the forged adjacency
            if not topo.has_link(path[i], path[i + 1]):
                assert (path[i], path[i + 1]) == (attacker, victim)
                break

    # Exactly two "origins" serve the prefix: each AS picked one.
    served_by_attacker = sum(
        1 for r in routes.values() if attacker in r.path
        and r.path[0] != attacker
    )
    served_by_victim = sum(
        1 for r in routes.values() if attacker not in r.path
    )
    assert served_by_attacker + served_by_victim >= len(routes) - 1
