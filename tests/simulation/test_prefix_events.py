"""Tests for prefix-lifecycle and session-reset events."""

import pytest

from repro.bgp.prefix import Prefix
from repro.simulation import (
    ASTopology,
    PrefixAnnouncement,
    PrefixWithdrawal,
    SessionReset,
    SimulatedInternet,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
NEW = Prefix.parse("10.9.0.0/24")


@pytest.fixture
def net():
    topo = ASTopology()
    topo.add_p2p(1, 2)
    topo.add_c2p(4, 1)
    topo.add_c2p(4, 2)
    topo.add_c2p(6, 2)
    topo.add_c2p(3, 1)
    net = SimulatedInternet(topo, seed=1)
    net.announce_prefix(P1, 4)
    net.announce_prefix(P2, 6)
    net.deploy_vps([2, 3, 6])
    return net


class TestPrefixWithdrawal:
    def test_all_vps_withdraw(self, net):
        updates = net.apply_event(PrefixWithdrawal(P1, time=100.0))
        assert {u.vp for u in updates} == {"vp2", "vp3", "vp6"}
        assert all(u.is_withdrawal for u in updates)
        assert all(u.prefix == P1 for u in updates)

    def test_prefix_gone_afterwards(self, net):
        net.apply_event(PrefixWithdrawal(P1, time=100.0))
        assert P1 not in net.prefixes()

    def test_unknown_prefix_rejected(self, net):
        with pytest.raises(ValueError):
            net.apply_event(PrefixWithdrawal(NEW, time=100.0))


class TestPrefixAnnouncement:
    def test_new_prefix_announced_to_all(self, net):
        updates = net.apply_event(
            PrefixAnnouncement(NEW, origin=6, time=100.0))
        assert {u.vp for u in updates} == {"vp2", "vp3", "vp6"}
        assert all(u.origin_as == 6 for u in updates)
        assert NEW in net.prefixes()

    def test_reannouncement_after_withdrawal(self, net):
        net.apply_event(PrefixWithdrawal(P1, time=100.0))
        updates = net.apply_event(
            PrefixAnnouncement(P1, origin=4, time=200.0))
        assert updates
        assert net.origin_of(P1) == 4

    def test_duplicate_announcement_rejected(self, net):
        with pytest.raises(ValueError):
            net.apply_event(PrefixAnnouncement(P1, origin=6, time=1.0))


class TestSessionReset:
    def test_withdraw_then_reannounce_everything(self, net):
        updates = net.apply_event(SessionReset(2, time=100.0))
        withdrawals = [u for u in updates if u.is_withdrawal]
        announcements = [u for u in updates if not u.is_withdrawal]
        assert {u.prefix for u in withdrawals} == {P1, P2}
        assert {u.prefix for u in announcements} == {P1, P2}
        assert all(u.vp == "vp2" for u in updates)

    def test_reannouncements_after_downtime(self, net):
        updates = net.apply_event(
            SessionReset(2, time=100.0, downtime_s=60.0))
        last_withdrawal = max(u.time for u in updates if u.is_withdrawal)
        first_announce = min(u.time for u in updates
                             if not u.is_withdrawal)
        assert first_announce >= 160.0
        assert last_withdrawal < first_announce

    def test_routes_unchanged_by_reset(self, net):
        before = {a: r.path for a, r in net.routes_for(P1).items()}
        updates = net.apply_event(SessionReset(2, time=100.0))
        reannounced = [u for u in updates
                       if not u.is_withdrawal and u.prefix == P1]
        assert reannounced[0].as_path == before[2]

    def test_non_vp_as_rejected(self, net):
        with pytest.raises(ValueError):
            net.apply_event(SessionReset(4, time=100.0))


class TestPathPrepend:
    def test_prepended_path_visible(self, net):
        updates = net.apply_event(
            __import__('repro.simulation', fromlist=['PathPrepend'])
            .PathPrepend(P1, count=3, time=100.0))
        assert updates
        for u in updates:
            assert u.as_path[-4:] == (4, 4, 4, 4)

    def test_zero_prepend_noop_when_already_plain(self, net):
        from repro.simulation import PathPrepend
        updates = net.apply_event(PathPrepend(P1, count=0, time=100.0))
        assert updates == []

    def test_prepend_then_restore(self, net):
        from repro.simulation import PathPrepend
        before = {a: r.path for a, r in net.routes_for(P1).items()}
        net.apply_event(PathPrepend(P1, count=2, time=100.0))
        restored = net.apply_event(PathPrepend(P1, count=0, time=200.0))
        after = {a: r.path for a, r in net.routes_for(P1).items()}
        assert after == before
        assert restored

    def test_negative_count_rejected(self):
        from repro.simulation import PathPrepend
        import pytest as _pytest
        with _pytest.raises(ValueError):
            PathPrepend(P1, count=-1, time=1.0)

    def test_unannounced_prefix_rejected(self, net):
        from repro.simulation import PathPrepend
        import pytest as _pytest
        with _pytest.raises(ValueError):
            net.apply_event(PathPrepend(NEW, count=1, time=1.0))

    def test_global_prepend_does_not_shift_routes(self):
        """Prepending toward *all* neighbors lengthens every path
        equally, so nobody shifts — only selective prepending steers."""
        from repro.simulation import ASTopology, PathPrepend, SimulatedInternet
        topo = ASTopology()
        topo.add_c2p(5, 9)
        topo.add_c2p(6, 9)
        topo.add_c2p(4, 5)
        topo.add_c2p(40, 6)
        topo.add_c2p(4, 40)
        net2 = SimulatedInternet(topo, seed=3)
        net2.announce_prefix(P1, 4)
        net2.deploy_vps([9])
        assert net2.routes_for(P1)[9].path == (9, 5, 4)
        net2.apply_event(PathPrepend(P1, count=3, time=50.0))
        assert net2.routes_for(P1)[9].path == (9, 5, 4, 4, 4, 4)

    def test_selective_prepend_shifts_traffic(self):
        """Prepending toward one upstream de-prefers routes via it —
        the standard TE maneuver."""
        from repro.simulation import ASTopology, PathPrepend, SimulatedInternet
        topo = ASTopology()
        # Origin 4 is dual-homed to 5 and 40; AS9 sits above both.
        topo.add_c2p(5, 9)
        topo.add_c2p(6, 9)
        topo.add_c2p(4, 5)
        topo.add_c2p(40, 6)
        topo.add_c2p(4, 40)
        net2 = SimulatedInternet(topo, seed=3)
        net2.announce_prefix(P1, 4)
        net2.deploy_vps([9])
        assert net2.routes_for(P1)[9].path == (9, 5, 4)
        # De-prefer the 4->5 upstream: announce 4 4 4 4 to AS5 only.
        updates = net2.apply_event(
            PathPrepend(P1, count=3, time=50.0, towards=5))
        assert net2.routes_for(P1)[9].path == (9, 6, 40, 4)
        assert updates and updates[0].as_path == (9, 6, 40, 4)

    def test_selective_prepend_non_neighbor_rejected(self, net):
        from repro.simulation import PathPrepend
        import pytest as _pytest
        with _pytest.raises(ValueError):
            net.apply_event(
                PathPrepend(P1, count=1, time=1.0, towards=999))
