"""Tests for Gao-Rexford route propagation."""

import pytest

from repro.simulation.policies import (
    Relationship,
    RouteClass,
    SimRoute,
    may_export,
)
from repro.simulation.routing import (
    Announcement,
    observed_links,
    propagate,
    routes_using_link,
)
from repro.simulation.topology import ASTopology


@pytest.fixture
def chain():
    """4 -> 2 -> 1 provider chain with a peer 3 of 2."""
    topo = ASTopology()
    topo.add_c2p(4, 2)
    topo.add_c2p(2, 1)
    topo.add_p2p(2, 3)
    return topo


@pytest.fixture
def fig5_topo():
    """A topology shaped like the paper's Fig. 5 scenario."""
    topo = ASTopology()
    # 1 and 2 are the core (peers); 4 is a customer of both 1 and 2;
    # 3 customer of 1; 6 customer of 2; 5 customer of 2; 7 customer of 5;
    # 5-6 peer at the edge.
    topo.add_p2p(1, 2)
    topo.add_c2p(4, 1)
    topo.add_c2p(4, 2)
    topo.add_c2p(3, 1)
    topo.add_c2p(6, 2)
    topo.add_c2p(5, 2)
    topo.add_c2p(7, 5)
    topo.add_p2p(5, 6)
    return topo


class TestPolicies:
    def test_preference_order(self):
        customer = SimRoute((1, 2), RouteClass.CUSTOMER)
        peer = SimRoute((1, 2), RouteClass.PEER)
        provider = SimRoute((1, 2), RouteClass.PROVIDER)
        assert customer.better_than(peer)
        assert peer.better_than(provider)

    def test_shorter_path_preferred_within_class(self):
        short = SimRoute((1, 2), RouteClass.CUSTOMER)
        long = SimRoute((1, 3, 2), RouteClass.CUSTOMER)
        assert short.better_than(long)

    def test_lowest_next_hop_tie_break(self):
        a = SimRoute((1, 2, 9), RouteClass.CUSTOMER)
        b = SimRoute((1, 3, 9), RouteClass.CUSTOMER)
        assert a.better_than(b)

    def test_export_rules(self):
        assert may_export(RouteClass.CUSTOMER, Relationship.PEER)
        assert may_export(RouteClass.SELF, Relationship.PROVIDER)
        assert not may_export(RouteClass.PEER, Relationship.PEER)
        assert not may_export(RouteClass.PROVIDER, Relationship.PEER)
        assert may_export(RouteClass.PROVIDER, Relationship.CUSTOMER)


class TestAnnouncement:
    def test_origination(self):
        a = Announcement.origination(7)
        assert a.path == (7,)

    def test_forged_origin_type1(self):
        a = Announcement.forged_origin(9, 4)
        assert a.path == (9, 4)

    def test_forged_origin_type2(self):
        a = Announcement.forged_origin(9, 4, (5,))
        assert a.path == (9, 5, 4)

    def test_path_must_start_at_sender(self):
        with pytest.raises(ValueError):
            Announcement(1, (2, 1))


class TestPropagation:
    def test_chain_propagation(self, chain):
        routes = propagate(chain, [Announcement.origination(4)])
        assert routes[4].path == (4,)
        assert routes[2].path == (2, 4)
        assert routes[1].path == (1, 2, 4)
        assert routes[1].route_class is RouteClass.CUSTOMER
        assert routes[3].path == (3, 2, 4)
        assert routes[3].route_class is RouteClass.PEER

    def test_peer_route_not_reexported_to_peer(self):
        """3 learns via peer 2; 3's peer 5 must NOT learn from 3."""
        topo = ASTopology()
        topo.add_c2p(4, 2)
        topo.add_p2p(2, 3)
        topo.add_p2p(3, 5)
        routes = propagate(topo, [Announcement.origination(4)])
        assert 5 not in routes

    def test_provider_route_exported_to_customer_only(self):
        topo = ASTopology()
        topo.add_c2p(2, 1)       # origin 1 is 2's provider
        topo.add_p2p(2, 3)       # 2's peer must not learn 2's provider route
        topo.add_c2p(5, 2)       # 2's customer must learn it
        routes = propagate(topo, [Announcement.origination(1)])
        assert routes[2].path == (2, 1)
        assert routes[2].route_class is RouteClass.PROVIDER
        assert routes[5].path == (5, 2, 1)
        assert 3 not in routes

    def test_customer_route_preferred_over_peer_and_provider(self):
        topo = ASTopology()
        # AS 10 can reach origin 4 via customer 5, peer 6, or provider 7.
        topo.add_c2p(5, 10)
        topo.add_p2p(10, 6)
        topo.add_c2p(10, 7)
        topo.add_c2p(4, 5)
        topo.add_c2p(4, 6)
        topo.add_c2p(4, 7)
        # make 6 and 7 also have the route as customer route
        routes = propagate(topo, [Announcement.origination(4)])
        assert routes[10].path == (10, 5, 4)
        assert routes[10].route_class is RouteClass.CUSTOMER

    def test_valley_free_paths(self, fig5_topo):
        """No path may go down (to a customer) and then up again."""
        for origin in fig5_topo.ases():
            routes = propagate(fig5_topo, [Announcement.origination(origin)])
            for route in routes.values():
                path = route.path
                descended = False
                for i in range(len(path) - 1):
                    rel = fig5_topo.relationship(path[i], path[i + 1])
                    if rel is Relationship.CUSTOMER:
                        descended = True
                    elif descended:
                        pytest.fail(f"valley in path {path}")

    def test_all_ases_reach_announced_prefix(self, fig5_topo):
        """In a connected GR topology every AS reaches every origin."""
        for origin in fig5_topo.ases():
            routes = propagate(fig5_topo, [Announcement.origination(origin)])
            assert set(routes) == set(fig5_topo.ases())

    def test_hijack_partitions_internet(self, fig5_topo):
        """A Type-1 hijack by 7 of 6's prefix attracts nearby ASes (§4.1)."""
        legit = Announcement.origination(6)
        forged = Announcement.forged_origin(7, 6)
        routes = propagate(fig5_topo, [legit, forged])
        # 5 prefers its customer route to the attacker 7.
        assert routes[5].path == (5, 7, 6)
        # 2 prefers its direct customer route to the victim 6.
        assert routes[2].path == (2, 6)

    def test_unknown_announcer_rejected(self, chain):
        with pytest.raises(ValueError):
            propagate(chain, [Announcement.origination(99)])

    def test_no_announcements_no_routes(self, chain):
        assert propagate(chain, []) == {}

    def test_deterministic(self, fig5_topo):
        a = propagate(fig5_topo, [Announcement.origination(4)])
        b = propagate(fig5_topo, [Announcement.origination(4)])
        assert a == b


class TestRouteQueries:
    def test_routes_using_link(self, chain):
        routes = propagate(chain, [Announcement.origination(4)])
        assert set(routes_using_link(routes, 2, 4)) == {2, 1, 3}
        assert set(routes_using_link(routes, 4, 2)) == {2, 1, 3}

    def test_observed_links(self, chain):
        routes = propagate(chain, [Announcement.origination(4)])
        assert observed_links(routes, [1]) == {(1, 2), (2, 4)}
        assert observed_links(routes, [4]) == set()

    def test_observed_links_missing_observer(self, chain):
        routes = propagate(chain, [Announcement.origination(4)])
        assert observed_links(routes, [999]) == set()
