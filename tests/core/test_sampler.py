"""Tests for the end-to-end GILL sampler (§6)."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.sampler import (
    GillSampler,
    UpdateSampler,
    infer_categories,
)
from repro.core.events import ASCategory
from repro.workload import StreamConfig, SyntheticStreamGenerator

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


@pytest.fixture(scope="module")
def synthetic_data():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=16, n_prefix_groups=10, duration_s=1800.0, seed=3))
    warmup, stream = generator.generate()
    return warmup + stream


class TestUpdateSampler:
    def test_redundant_plus_nonredundant_is_total(self, synthetic_data):
        result = UpdateSampler().run(synthetic_data)
        assert result.total == len(synthetic_data)

    def test_substantial_redundancy_found(self, synthetic_data):
        """On event-driven streams most updates are redundant (§6:
        |U|/|V| ~ 0.07-0.16 on RIS/RV)."""
        result = UpdateSampler().run(synthetic_data)
        assert result.retention < 0.5

    def test_cross_prefix_demotes(self, synthetic_data):
        """Prefix groups share updates, so step 3 must find duplicates."""
        with_cp = UpdateSampler(cross_prefix=True).run(synthetic_data)
        without = UpdateSampler(cross_prefix=False).run(synthetic_data)
        assert with_cp.demoted_count > 0
        assert len(with_cp.nonredundant) == \
            len(without.nonredundant) - with_cp.demoted_count

    def test_per_key_all_or_none(self, synthetic_data):
        """Every (vp, prefix) pair is entirely redundant or entirely
        nonredundant — required for coarse filters (§7)."""
        result = UpdateSampler().run(synthetic_data)
        nonred = {(u.vp, u.prefix) for u in result.nonredundant}
        red = {(u.vp, u.prefix) for u in result.redundant}
        assert not (nonred & red)

    def test_higher_target_retains_more(self, synthetic_data):
        low = UpdateSampler(target_power=0.5).run(synthetic_data)
        high = UpdateSampler(target_power=0.99).run(synthetic_data)
        assert len(high.nonredundant) >= len(low.nonredundant)

    def test_empty(self):
        result = UpdateSampler().run([])
        assert result.total == 0
        assert result.retention == 0.0


class TestInferCategories:
    def test_degree_ordering(self):
        updates = []
        # AS 1 appears in every path (core); 50+ are stubs.
        for i in range(10):
            updates.append(BGPUpdate(f"vp{i}", float(i),
                                     Prefix.from_index(i),
                                     (50 + i, 1, 100 + i)))
        categories = infer_categories(updates, hypergiant_count=2)
        assert categories[1] is ASCategory.TIER_1

    def test_empty(self):
        assert infer_categories([]) == {}


class TestGillSampler:
    @pytest.fixture(scope="class")
    def result(self, ):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=16, n_prefix_groups=10, duration_s=1800.0, seed=3))
        warmup, stream = generator.generate()
        data = warmup + stream
        return GillSampler(events_per_cell=8).run(data), data

    def test_produces_anchors(self, result):
        gill, _ = result
        assert 1 <= len(gill.anchor_vps) <= 16

    def test_filters_keep_anchor_traffic(self, result):
        gill, data = result
        anchor = gill.anchor_vps[0]
        for update in data:
            if update.vp == anchor:
                assert gill.filters.accept(update)

    def test_sample_is_subset(self, result):
        gill, data = result
        sample = gill.sample(data)
        assert len(sample) <= len(data)
        assert set(u.attribute_key() for u in sample) <= \
            set(u.attribute_key() for u in data)

    def test_sample_keeps_nonredundant(self, result):
        gill, data = result
        sample_keys = {(u.vp, u.prefix) for u in gill.sample(data)}
        for update in gill.component1.nonredundant:
            assert (update.vp, update.prefix) in sample_keys

    def test_events_used_positive(self, result):
        gill, _ = result
        assert gill.events_used > 0

    def test_max_anchor_fraction(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=12, n_prefix_groups=8, duration_s=1200.0, seed=5))
        warmup, stream = generator.generate()
        gill = GillSampler(events_per_cell=5,
                           max_anchor_fraction=0.25).run(warmup + stream)
        assert len(gill.anchor_vps) <= 3
