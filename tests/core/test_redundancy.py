"""Tests for the §4.2 redundancy definitions."""

import pytest

from repro.bgp.message import AnnotatedUpdate, BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.rib import annotate_stream
from repro.core.redundancy import (
    RedundancyDefinition,
    condition1,
    condition2,
    condition3,
    is_redundant_with,
    update_redundancy,
    vp_redundancy,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")

DEF1 = RedundancyDefinition.PREFIX
DEF2 = RedundancyDefinition.PREFIX_ASPATH
DEF3 = RedundancyDefinition.PREFIX_ASPATH_COMMUNITY


def ann(vp="vp1", t=0.0, prefix=P1, path=(1, 2), comms=(),
        prev_links=(), prev_comms=()):
    return AnnotatedUpdate(
        BGPUpdate(vp, t, prefix, path, frozenset(comms)),
        frozenset(prev_links), frozenset(prev_comms),
    )


class TestConditions:
    def test_condition1_same_prefix_close_time(self):
        assert condition1(ann(t=0.0), ann(vp="vp2", t=99.0))

    def test_condition1_time_too_far(self):
        assert not condition1(ann(t=0.0), ann(vp="vp2", t=100.0))

    def test_condition1_different_prefix(self):
        assert not condition1(ann(prefix=P1), ann(prefix=P2))

    def test_condition2_subset(self):
        u1 = ann(path=(1, 2))
        u2 = ann(vp="vp2", path=(3, 1, 2))
        assert condition2(u1, u2)
        assert not condition2(u2, u1)

    def test_condition2_equal_sets(self):
        assert condition2(ann(path=(1, 2)), ann(vp="vp2", path=(1, 2)))

    def test_condition2_uses_new_links_only(self):
        """Links already present in the previous route don't count."""
        u1 = ann(path=(9, 1, 2), prev_links={(9, 1)})
        u2 = ann(vp="vp2", path=(7, 1, 2), prev_links={(7, 1)})
        assert condition2(u1, u2)    # both introduce only (1, 2)

    def test_condition3_subset(self):
        u1 = ann(comms={(1, 1)})
        u2 = ann(vp="vp2", comms={(1, 1), (2, 2)})
        assert condition3(u1, u2)
        assert not condition3(u2, u1)

    def test_condition3_uses_new_communities_only(self):
        u1 = ann(comms={(1, 1), (5, 5)}, prev_comms={(5, 5)})
        u2 = ann(vp="vp2", comms={(1, 1)})
        assert condition3(u1, u2)


class TestDefinitions:
    def test_def1_ignores_attributes(self):
        u1 = ann(path=(1, 2), comms={(9, 9)})
        u2 = ann(vp="vp2", path=(5, 6), comms={(7, 7)})
        assert is_redundant_with(u1, u2, DEF1)

    def test_def2_requires_link_inclusion(self):
        u1 = ann(path=(1, 2))
        u2 = ann(vp="vp2", path=(5, 6))
        assert not is_redundant_with(u1, u2, DEF2)

    def test_def3_requires_community_inclusion(self):
        u1 = ann(path=(1, 2), comms={(9, 9)})
        u2 = ann(vp="vp2", path=(1, 2), comms={(8, 8)})
        assert is_redundant_with(u1, u2, DEF2)
        assert not is_redundant_with(u1, u2, DEF3)

    def test_definitions_strictly_nested(self):
        """Def-3 redundancy implies Def-2 implies Def-1."""
        u1 = ann(path=(1, 2), comms={(1, 1)})
        u2 = ann(vp="vp2", t=50.0, path=(0, 1, 2), comms={(1, 1), (2, 2)})
        assert is_redundant_with(u1, u2, DEF3)
        assert is_redundant_with(u1, u2, DEF2)
        assert is_redundant_with(u1, u2, DEF1)

    def test_asymmetry(self):
        u1 = ann(path=(1, 2))
        u2 = ann(vp="vp2", path=(0, 1, 2))
        assert is_redundant_with(u1, u2, DEF2)
        assert not is_redundant_with(u2, u1, DEF2)


class TestUpdateRedundancy:
    def test_empty(self):
        report = update_redundancy([], DEF1)
        assert report.fraction == 0.0

    def test_lone_update_not_redundant(self):
        report = update_redundancy([ann()], DEF1)
        assert report.redundant_updates == 0

    def test_pair_redundant(self):
        report = update_redundancy([ann(), ann(vp="vp2", t=10.0)], DEF1)
        assert report.redundant_updates == 2
        assert report.fraction == 1.0

    def test_distant_updates_not_redundant(self):
        report = update_redundancy(
            [ann(t=0.0), ann(vp="vp2", t=500.0)], DEF1)
        assert report.redundant_updates == 0

    def test_stricter_definitions_monotone(self):
        """Redundant fraction can only drop as definitions tighten."""
        updates = [
            ann(t=1.0, path=(1, 2)),
            ann(vp="vp2", t=2.0, path=(0, 1, 2)),
            ann(vp="vp3", t=3.0, path=(8, 9)),
            ann(vp="vp4", t=4.0, path=(1, 2), comms={(7, 7)}),
        ]
        fr = [update_redundancy(updates, d).fraction
              for d in (DEF1, DEF2, DEF3)]
        assert fr[0] >= fr[1] >= fr[2]


class TestVPRedundancy:
    def test_identical_vps_redundant(self):
        stream = []
        for k in range(10):
            stream.append(BGPUpdate("vp1", 200.0 * k, P1, (1, 2)))
            stream.append(BGPUpdate("vp2", 200.0 * k + 5, P1, (1, 2)))
        report = vp_redundancy(annotate_stream(stream), DEF1)
        assert ("vp1", "vp2") in report.redundant_pairs
        assert ("vp2", "vp1") in report.redundant_pairs
        assert report.fraction == 1.0

    def test_disjoint_vps_not_redundant(self):
        stream = []
        for k in range(10):
            stream.append(BGPUpdate("vp1", 200.0 * k, P1, (1, 2)))
            stream.append(BGPUpdate("vp2", 200.0 * k + 5, P2, (1, 2)))
        report = vp_redundancy(annotate_stream(stream), DEF1)
        assert report.redundant_pairs == ()

    def test_threshold_boundary(self):
        """9 of 10 covered = 90% is NOT strictly above the threshold."""
        stream = []
        for k in range(10):
            stream.append(BGPUpdate("vp1", 200.0 * k, P1, (1, 2)))
            if k < 9:
                stream.append(BGPUpdate("vp2", 200.0 * k + 5, P1, (1, 2)))
        report = vp_redundancy(annotate_stream(stream), DEF1)
        assert ("vp1", "vp2") not in report.redundant_pairs
        # vp2's updates are all covered by vp1, so the other direction holds.
        assert ("vp2", "vp1") in report.redundant_pairs

    def test_empty_stream(self):
        report = vp_redundancy([], DEF1)
        assert report.fraction == 0.0
