"""Tests for filter generation and the public documents (§7, §9)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.filtering import FilterGranularity
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.filters import (
    anchors_document,
    filters_document,
    generate_filter_table,
)
from repro.core.sampler import UpdateSampler

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp="vp1", t=0.0, prefix=P1, path=(1, 2)):
    return BGPUpdate(vp, t, prefix, path)


class TestGenerateFilterTable:
    def test_redundant_updates_dropped(self):
        table = generate_filter_table([upd()])
        assert not table.accept(upd())

    def test_future_similar_updates_dropped(self):
        """Coarse rules match the whole (vp, prefix) space (§7)."""
        table = generate_filter_table([upd(path=(1, 2))])
        assert not table.accept(upd(t=9999.0, path=(7, 8, 9)))

    def test_anchor_updates_always_kept(self):
        table = generate_filter_table([upd()], anchor_vps=["vp1"])
        assert table.accept(upd())

    def test_new_vp_accepted_by_default(self):
        table = generate_filter_table([upd()])
        assert table.accept(upd(vp="brand-new-vp"))

    def test_fine_granularity_misses_new_paths(self):
        """The GILL-asp ablation: path-specific rules age instantly."""
        table = generate_filter_table(
            [upd(path=(1, 2))], granularity=FilterGranularity.PREFIX_ASPATH)
        assert not table.accept(upd(path=(1, 2)))
        assert table.accept(upd(path=(7, 8)))


class TestInvariantNeverDropNonredundant:
    """§7: 'filters cannot match an update inferred as nonredundant'."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["vp1", "vp2", "vp3"]),
                  st.floats(min_value=0, max_value=5000),
                  st.integers(min_value=0, max_value=2),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=40))
    def test_property(self, raw):
        updates = [
            BGPUpdate(vp, t, Prefix.from_index(p), (path_id + 1, 99))
            for vp, t, p, path_id in raw
        ]
        result = UpdateSampler().run(updates)
        table = generate_filter_table(result.redundant)
        for update in result.nonredundant:
            assert table.accept(update)


class TestDocuments:
    def test_filters_document_format(self):
        table = generate_filter_table(
            [upd(), upd(vp="vp2", prefix=P2)], anchor_vps=["vp9"])
        doc = filters_document(table)
        assert "from vp9 accept all" in doc
        assert "from vp1 drop prefix 10.0.0.0/24" in doc
        assert "from vp2 drop prefix 10.0.1.0/24" in doc
        assert doc.rstrip().endswith("default accept")

    def test_filters_document_fine_grained(self):
        table = generate_filter_table(
            [upd(path=(1, 2))], granularity=FilterGranularity.PREFIX_ASPATH)
        assert "as-path 1-2" in filters_document(table)

    def test_anchors_document(self):
        doc = anchors_document(["vpB", "vpA"])
        assert doc.splitlines() == ["1 vpA", "2 vpB"]

    def test_empty_anchors_document(self):
        assert anchors_document([]) == ""
