"""Tests for reconstitution power and the per-prefix selection (§17.2)."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.correlation import CorrelationGroups
from repro.core.reconstitution import (
    false_reconstitution_rate,
    power_curve,
    reconstitution_power,
    select_nonredundant_for_prefix,
)

P1 = Prefix.parse("10.0.0.0/24")


def upd(vp, t, path):
    return BGPUpdate(vp, t, P1, path)


@pytest.fixture
def fig10_v():
    """The eight updates U1..U8 of the §17.2 worked example."""
    return [
        upd("vp1", 1000.0, (2, 1, 4)),       # U1
        upd("vp2", 1010.0, (6, 2, 1, 4)),    # U2
        upd("vp1", 3000.0, (2, 4)),          # U3
        upd("vp2", 3010.0, (6, 2, 4)),       # U4
        upd("vp1", 5000.0, (2, 1, 4)),       # U5
        upd("vp2", 5010.0, (6, 3, 1, 4)),    # U6
        upd("vp1", 7000.0, (2, 4)),          # U7
        upd("vp2", 7010.0, (6, 2, 4)),       # U8
    ]


class TestReconstitutionPower:
    def test_empty_v_is_fully_reconstituted(self):
        groups = CorrelationGroups.build([])
        assert reconstitution_power([], [], groups) == 1.0

    def test_empty_u_reconstitutes_nothing(self, fig10_v):
        groups = CorrelationGroups.build(fig10_v)
        assert reconstitution_power(fig10_v, [], groups) == 0.0

    def test_vp2_reconstitutes_everything(self, fig10_v):
        """The paper's worked example: U = vp2's updates gives RP = 1."""
        groups = CorrelationGroups.build(fig10_v)
        u = [u for u in fig10_v if u.vp == "vp2"]
        assert reconstitution_power(fig10_v, u, groups) == 1.0

    def test_vp1_cannot_reconstitute_everything(self, fig10_v):
        """vp1's (2,1,4) is ambiguous between G1 and G3, so one of
        U2/U6 cannot be rebuilt (§17.2's worked example)."""
        groups = CorrelationGroups.build(fig10_v)
        u = [u for u in fig10_v if u.vp == "vp1"]
        assert reconstitution_power(fig10_v, u, groups) < 1.0

    def test_u_equals_v_is_complete(self, fig10_v):
        groups = CorrelationGroups.build(fig10_v)
        assert reconstitution_power(fig10_v, fig10_v, groups) == 1.0

    def test_false_reconstitution_rate(self, fig10_v):
        """vp1's ambiguous update incorrectly rebuilds a vp2 update at
        the wrong time — the §17.2 'false positive' case."""
        groups = CorrelationGroups.build(fig10_v)
        u = [u for u in fig10_v if u.vp == "vp1"]
        rate = false_reconstitution_rate(fig10_v, u, groups)
        assert 0.0 < rate < 1.0

    def test_no_false_positives_from_vp2(self, fig10_v):
        groups = CorrelationGroups.build(fig10_v)
        u = [u for u in fig10_v if u.vp == "vp2"]
        assert false_reconstitution_rate(fig10_v, u, groups) == 0.0


class TestSelection:
    def test_selects_vp2_first(self, fig10_v):
        """The greedy must pick vp2, whose updates rebuild all of V."""
        groups = CorrelationGroups.build(fig10_v)
        result = select_nonredundant_for_prefix(P1, fig10_v, groups)
        assert result.selected_vps == ["vp2"]
        assert result.power == 1.0
        assert {u.vp for u in result.nonredundant} == {"vp2"}
        assert {u.vp for u in result.redundant} == {"vp1"}
        assert result.retention == 0.5

    def test_all_or_none_per_vp(self, fig10_v):
        """GILL adds all of a VP's updates or none (§17.2)."""
        groups = CorrelationGroups.build(fig10_v)
        result = select_nonredundant_for_prefix(P1, fig10_v, groups)
        for vp in ("vp1", "vp2"):
            classified = {vp2 for vp2 in
                          ([u.vp for u in result.nonredundant]
                           + [u.vp for u in result.redundant])}
        nonred_vps = {u.vp for u in result.nonredundant}
        red_vps = {u.vp for u in result.redundant}
        assert not (nonred_vps & red_vps)

    def test_empty_prefix(self):
        groups = CorrelationGroups.build([])
        result = select_nonredundant_for_prefix(P1, [], groups)
        assert result.power == 1.0
        assert result.nonredundant == []

    def test_target_power_limits_selection(self):
        """A low target stops after the first VP."""
        updates = [upd(f"vp{i}", 10.0 * i, (i, 99)) for i in range(5)]
        groups = CorrelationGroups.build(updates)
        result = select_nonredundant_for_prefix(
            P1, updates, groups, target_power=0.2)
        assert len(result.selected_vps) == 1

    def test_unreachable_target_selects_all_useful(self):
        """Disjoint per-VP windows: each VP only rebuilds itself."""
        updates = [upd(f"vp{i}", 1000.0 * i, (i, 99)) for i in range(4)]
        groups = CorrelationGroups.build(updates)
        result = select_nonredundant_for_prefix(
            P1, updates, groups, target_power=1.0)
        assert result.power == 1.0
        assert len(result.selected_vps) == 4

    def test_single_vp(self):
        updates = [upd("vp1", 0.0, (1, 2)), upd("vp1", 10.0, (1, 3))]
        groups = CorrelationGroups.build(updates)
        result = select_nonredundant_for_prefix(P1, updates, groups)
        assert result.selected_vps == ["vp1"]
        assert result.redundant == []


class TestPowerCurve:
    def test_monotone_nondecreasing(self, fig10_v):
        groups = CorrelationGroups.build(fig10_v)
        curve = power_curve(P1, fig10_v, groups)
        powers = [p for _, p in curve]
        assert powers == sorted(powers)
        assert curve[0] == (0.0, 0.0)
        assert powers[-1] == 1.0

    def test_fractions_increase(self, fig10_v):
        groups = CorrelationGroups.build(fig10_v)
        curve = power_curve(P1, fig10_v, groups)
        fractions = [f for f, _ in curve]
        assert fractions == sorted(fractions)
