"""Tests for correlation groups (§17.1), including the Fig. 10 example."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.correlation import (
    CorrelationGroups,
    reconstitute,
    signature,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp, t, path, prefix=P1):
    return BGPUpdate(vp, t, prefix, path)


@pytest.fixture
def fig10_updates():
    """The four events of Fig. 10 (appendix §17.1), prefix p1 only.

    Events at T=1000/3000/5000/7000; events #2 and #4 produce identical
    update pairs (the restored primary paths), so their group G2 ends up
    with weight 2.
    """
    return [
        # Event 1: link 2-4 fails.
        upd("vp1", 1000.0, (2, 1, 4)),
        upd("vp2", 1010.0, (6, 2, 1, 4)),
        # Event 2: link restored.
        upd("vp1", 3000.0, (2, 4)),
        upd("vp2", 3010.0, (6, 2, 4)),
        # Event 3: both 2-4 and 2-6 fail.
        upd("vp1", 5000.0, (2, 1, 4)),
        upd("vp2", 5010.0, (6, 3, 1, 4)),
        # Event 4: both restored.
        upd("vp1", 7000.0, (2, 4)),
        upd("vp2", 7010.0, (6, 2, 4)),
    ]


class TestBuild:
    def test_fig10_three_groups(self, fig10_updates):
        groups = CorrelationGroups.build(fig10_updates)
        assert groups.total_groups() == 3

    def test_fig10_g2_weight_two(self, fig10_updates):
        groups = CorrelationGroups.build(fig10_updates)
        g2 = groups.max_weight_group(P1, upd("vp1", 0.0, (2, 4)))
        assert g2 is not None
        assert g2.weight == 2
        others = [g for g in groups.groups_for_prefix(P1) if g is not g2]
        assert all(g.weight == 1 for g in others)

    def test_windows_split_by_100s(self):
        updates = [upd("vp1", 0.0, (1, 2)), upd("vp2", 150.0, (3, 2))]
        groups = CorrelationGroups.build(updates)
        assert groups.total_groups() == 2

    def test_windows_join_within_100s(self):
        updates = [upd("vp1", 0.0, (1, 2)), upd("vp2", 99.0, (3, 2))]
        groups = CorrelationGroups.build(updates)
        assert groups.total_groups() == 1

    def test_per_prefix_separation(self):
        """Updates for different prefixes never share a group (§17.1)."""
        updates = [upd("vp1", 0.0, (1, 2), P1), upd("vp1", 1.0, (1, 2), P2)]
        groups = CorrelationGroups.build(updates)
        assert len(groups.prefixes()) == 2
        for prefix in (P1, P2):
            assert len(groups.groups_for_prefix(prefix)) == 1

    def test_empty(self):
        groups = CorrelationGroups.build([])
        assert groups.total_groups() == 0
        assert groups.prefixes() == []


class TestQueries:
    def test_groups_containing(self, fig10_updates):
        groups = CorrelationGroups.build(fig10_updates)
        hits = groups.groups_containing(P1, upd("vp1", 0.0, (2, 1, 4)))
        assert len(hits) == 2   # G1 and G3 both contain vp1's (2,1,4)

    def test_unknown_update_no_groups(self, fig10_updates):
        groups = CorrelationGroups.build(fig10_updates)
        assert groups.groups_containing(P1, upd("vp9", 0.0, (9, 9))) == []
        assert groups.max_weight_group(P1, upd("vp9", 0.0, (9, 9))) is None

    def test_signature_ignores_time_and_prefix(self):
        a = signature(upd("vp1", 0.0, (1, 2), P1))
        b = signature(upd("vp1", 99.0, (1, 2), P2))
        assert a == b


class TestReconstitute:
    def test_rebuilds_heaviest_group(self, fig10_updates):
        groups = CorrelationGroups.build(fig10_updates)
        rebuilt = reconstitute(groups, P1, upd("vp2", 9000.0, (6, 2, 4)))
        # G2 (weight 2) contains vp1:(2,4) and vp2:(6,2,4).
        assert {(u.vp, u.as_path) for u in rebuilt} == {
            ("vp1", (2, 4)), ("vp2", (6, 2, 4))}
        assert all(u.time == 9000.0 for u in rebuilt)
        assert all(u.prefix == P1 for u in rebuilt)

    def test_ambiguous_update_uses_weight(self, fig10_updates):
        """vp1's (2,1,4) is in G1 and G3 (both weight 1): deterministic
        tie-break picks one of them consistently."""
        groups = CorrelationGroups.build(fig10_updates)
        first = reconstitute(groups, P1, upd("vp1", 0.0, (2, 1, 4)))
        second = reconstitute(groups, P1, upd("vp1", 50.0, (2, 1, 4)))
        assert {(u.vp, u.as_path) for u in first} == \
            {(u.vp, u.as_path) for u in second}

    def test_unknown_update_rebuilds_nothing(self, fig10_updates):
        groups = CorrelationGroups.build(fig10_updates)
        assert reconstitute(groups, P1, upd("vp9", 0.0, (9, 9))) == []

    def test_withdrawals_participate(self):
        updates = [
            upd("vp1", 0.0, (1, 2)),
            BGPUpdate("vp2", 10.0, P1, is_withdrawal=True),
        ]
        groups = CorrelationGroups.build(updates)
        rebuilt = reconstitute(groups, P1, updates[1])
        assert any(u.is_withdrawal for u in rebuilt)
