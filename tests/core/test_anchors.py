"""Tests for anchor-VP selection (§18.4)."""

import numpy as np
import pytest

from repro.core.anchors import score_drift, select_anchor_vps


def scores_from_clusters(clusters, n):
    """Score matrix where VPs in the same cluster are perfectly
    redundant (1.0) and cross-cluster pairs score 0.2."""
    scores = np.full((n, n), 0.2)
    for cluster in clusters:
        for a in cluster:
            for b in cluster:
                scores[a, b] = 1.0
    np.fill_diagonal(scores, 1.0)
    return scores


class TestSelectAnchors:
    def test_one_anchor_per_cluster(self):
        vps = [f"vp{i}" for i in range(6)]
        scores = scores_from_clusters([(0, 1, 2), (3, 4), (5,)], 6)
        result = select_anchor_vps(vps, scores, [10] * 6)
        # Every unselected VP must be saturated with an anchor; one
        # anchor per cluster suffices.
        assert len(result.anchors) == 3
        clusters = [{0, 1, 2}, {3, 4}, {5}]
        anchor_ids = {int(a[2:]) for a in result.anchors}
        for cluster in clusters:
            assert anchor_ids & cluster

    def test_volume_breaks_ties(self):
        """Within the candidate pool the lowest-volume VP is chosen."""
        vps = [f"vp{i}" for i in range(4)]
        scores = scores_from_clusters([(0, 1), (2, 3)], 4)
        volumes = [100, 1, 100, 1]
        result = select_anchor_vps(vps, scores, volumes, gamma=1.0)
        assert set(result.anchors) <= {"vp1", "vp3", "vp0", "vp2"}
        # The second anchor (greedy pick) must be a low-volume VP.
        assert result.order[1] in ("vp1", "vp3")

    def test_seed_is_most_redundant(self):
        """The first anchor has the highest average redundancy."""
        vps = [f"vp{i}" for i in range(5)]
        scores = scores_from_clusters([(0, 1, 2, 3)], 5)
        result = select_anchor_vps(vps, scores, [1] * 5)
        assert int(result.order[0][2:]) in (0, 1, 2, 3)

    def test_no_redundancy_selects_everyone(self):
        vps = [f"vp{i}" for i in range(4)]
        scores = np.eye(4)
        result = select_anchor_vps(vps, scores, [1] * 4)
        assert len(result.anchors) == 4

    def test_max_anchors_cap(self):
        vps = [f"vp{i}" for i in range(6)]
        scores = np.eye(6)
        result = select_anchor_vps(vps, scores, [1] * 6, max_anchors=2)
        assert len(result.anchors) == 2

    def test_single_vp(self):
        result = select_anchor_vps(["vp0"], np.ones((1, 1)), [5])
        assert result.anchors == ("vp0",)

    def test_empty(self):
        result = select_anchor_vps([], np.zeros((0, 0)), [])
        assert result.anchors == ()
        assert result.fraction == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            select_anchor_vps(["a", "b"], np.zeros((3, 3)), [1, 1])

    def test_bad_gamma_rejected(self):
        with pytest.raises(ValueError):
            select_anchor_vps(["a"], np.ones((1, 1)), [1], gamma=0.0)

    def test_lower_stop_threshold_fewer_anchors(self):
        rng = np.random.default_rng(7)
        n = 20
        base = rng.random((n, n))
        scores = (base + base.T) / 2
        np.fill_diagonal(scores, 1.0)
        many = select_anchor_vps([f"v{i}" for i in range(n)], scores,
                                 [1] * n, stop_threshold=0.99)
        few = select_anchor_vps([f"v{i}" for i in range(n)], scores,
                                [1] * n, stop_threshold=0.5)
        assert len(few.anchors) <= len(many.anchors)

    def test_fraction(self):
        vps = [f"vp{i}" for i in range(4)]
        scores = scores_from_clusters([(0, 1, 2, 3)], 4)
        result = select_anchor_vps(vps, scores, [1] * 4)
        assert result.fraction == pytest.approx(0.25)


class TestScoreDrift:
    def test_identical_matrices_zero_drift(self):
        m = np.random.default_rng(1).random((4, 4))
        assert (score_drift(m, m) == 0).all()

    def test_drift_values(self):
        a = np.zeros((3, 3))
        b = np.full((3, 3), 0.5)
        drift = score_drift(a, b)
        assert drift.shape == (3,)
        assert np.allclose(drift, 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            score_drift(np.zeros((2, 2)), np.zeros((3, 3)))
