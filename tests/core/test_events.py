"""Tests for event detection, AS categories, and balanced selection (§18.1)."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.events import (
    ASCategory,
    EventKind,
    categorize_ases,
    category_pair,
    detect_events,
    select_events_balanced,
    select_events_random,
    selection_matrix,
)
from repro.simulation.topology import synthetic_known_topology

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp, t, path, prefix=P1):
    return BGPUpdate(vp, t, prefix, path)


class TestCategorizeAses:
    @pytest.fixture(scope="class")
    def topo(self):
        return synthetic_known_topology(300, seed=1)

    def test_every_as_categorized(self, topo):
        categories = categorize_ases(topo)
        assert set(categories) == set(topo.ases())

    def test_tier1_identified(self, topo):
        categories = categorize_ases(topo)
        for asn in topo.tier1_ases():
            assert categories[asn] is ASCategory.TIER_1

    def test_stubs_identified(self, topo):
        categories = categorize_ases(topo)
        stubs = [a for a, c in categories.items() if c is ASCategory.STUB]
        assert stubs
        for asn in stubs:
            assert not topo.customers(asn)

    def test_highest_id_wins(self, topo):
        """A Tier-1 that is also a hypergiant must stay Tier-1."""
        categories = categorize_ases(topo)
        by_degree = sorted(topo.ases(), key=lambda a: (-topo.degree(a), a))
        top = by_degree[0]
        if top in topo.tier1_ases():
            assert categories[top] is ASCategory.TIER_1

    def test_transit_split(self, topo):
        categories = categorize_ases(topo)
        t1 = [a for a, c in categories.items() if c is ASCategory.TRANSIT_1]
        t2 = [a for a, c in categories.items() if c is ASCategory.TRANSIT_2]
        assert t1 and t2
        # Transit-1 ASes have smaller cones than Transit-2 ones on average.
        cone = lambda a: len(topo.customer_cone(a))
        avg1 = sum(map(cone, t1)) / len(t1)
        avg2 = sum(map(cone, t2)) / len(t2)
        assert avg1 < avg2


class TestDetectEvents:
    def test_new_link_detected(self):
        stream = [
            upd("vp1", 0.0, (1, 2)),
            upd("vp1", 500.0, (1, 3, 2)),   # links 1-3, 3-2 appear
        ]
        events = detect_events(stream, total_vps=10)
        kinds = {(e.kind, e.as_pair) for e in events}
        assert (EventKind.NEW_LINK, (1, 3)) in kinds
        assert (EventKind.NEW_LINK, (2, 3)) in kinds

    def test_outage_detected(self):
        stream = [
            upd("vp1", 0.0, (1, 2, 9)),
            upd("vp1", 500.0, (1, 3, 9)),   # 1-2, 2-9 disappear
        ]
        events = detect_events(stream, total_vps=10)
        outages = {e.as_pair for e in events if e.kind is EventKind.OUTAGE}
        assert (1, 2) in outages and (2, 9) in outages

    def test_origin_change_detected(self):
        stream = [
            upd("vp1", 0.0, (1, 2, 9)),
            upd("vp1", 500.0, (1, 2, 7)),
        ]
        events = detect_events(stream, total_vps=10)
        changes = [e for e in events if e.kind is EventKind.ORIGIN_CHANGE]
        assert len(changes) == 1
        assert changes[0].as_pair == (7, 9)
        assert changes[0].prefix == P1

    def test_observations_clustered(self):
        """Two VPs seeing the same new link within the window = 1 event."""
        stream = [
            upd("vp1", 0.0, (1, 9)),
            upd("vp2", 1.0, (2, 9)),
            upd("vp1", 500.0, (1, 5, 9)),
            upd("vp2", 520.0, (2, 5, 9)),
        ]
        events = detect_events(stream, total_vps=10)
        five_nine = [e for e in events if e.as_pair == (5, 9)]
        assert len(five_nine) == 1
        assert five_nine[0].observers == frozenset({"vp1", "vp2"})

    def test_separate_clusters_far_apart(self):
        stream = [
            upd("vp1", 0.0, (1, 9)),
            upd("vp1", 500.0, (1, 5, 9)),
            upd("vp1", 600.0, (1, 9)),       # 1-5/5-9 disappear
            upd("vp1", 5000.0, (1, 5, 9)),   # reappear much later
        ]
        events = detect_events(stream, total_vps=10)
        five_nine = [e for e in events
                     if e.as_pair == (5, 9) and e.kind is EventKind.NEW_LINK]
        assert len(five_nine) == 2

    def test_global_events_excluded(self):
        """An event seen by >= 50% of VPs is not a candidate."""
        stream = []
        for i in range(4):
            stream.append(upd(f"vp{i}", float(i), (i + 10, 9)))
        for i in range(4):
            stream.append(upd(f"vp{i}", 500.0 + i, (i + 10, 5, 9)))
        events = detect_events(stream, total_vps=4)
        assert not [e for e in events if e.as_pair == (5, 9)]

    def test_event_window_padded(self):
        stream = [
            upd("vp1", 1000.0, (1, 9)),
            upd("vp1", 2000.0, (1, 5, 9)),
        ]
        events = detect_events(stream, total_vps=10)
        event = [e for e in events if e.as_pair == (5, 9)][0]
        assert event.start < 2000.0
        assert event.end > 2000.0

    def test_empty_stream(self):
        assert detect_events([], total_vps=0) == []


class TestBalancedSelection:
    def _make_events(self):
        """Events across two category pairs with skewed counts."""
        from repro.core.events import ObservedEvent
        events = []
        for i in range(20):   # many stub-stub events
            events.append(ObservedEvent(
                EventKind.NEW_LINK, 100 + i, 200 + i, float(i), i + 1.0,
                frozenset({"vp1"})))
        for i in range(3):    # few tier1-tier1 events
            events.append(ObservedEvent(
                EventKind.NEW_LINK, 1, 2, 100.0 + i, 101.0 + i,
                frozenset({"vp1"})))
        categories = {1: ASCategory.TIER_1, 2: ASCategory.TIER_1}
        for i in range(20):
            categories[100 + i] = ASCategory.STUB
            categories[200 + i] = ASCategory.STUB
        return events, categories

    def test_per_cell_quota(self):
        events, categories = self._make_events()
        selected = select_events_balanced(events, categories, per_cell=5,
                                          seed=1)
        matrix = selection_matrix(selected, categories)
        stub_pair = (ASCategory.STUB, ASCategory.STUB)
        tier_pair = (ASCategory.TIER_1, ASCategory.TIER_1)
        # Stub-stub capped at 5; tier1-tier1 contributes its 3.
        assert matrix[stub_pair] == pytest.approx(5 / 8)
        assert matrix[tier_pair] == pytest.approx(3 / 8)

    def test_balanced_less_biased_than_random(self):
        events, categories = self._make_events()
        balanced = select_events_balanced(events, categories, per_cell=3,
                                          seed=1)
        rnd = select_events_random(events, 6, seed=1)
        mb = selection_matrix(balanced, categories)
        mr = selection_matrix(rnd, categories)
        stub_pair = (ASCategory.STUB, ASCategory.STUB)
        assert mb.get(stub_pair, 0) < mr.get(stub_pair, 0)

    def test_random_selection_size(self):
        events, _ = self._make_events()
        assert len(select_events_random(events, 10, seed=2)) == 10
        assert len(select_events_random(events, 1000, seed=2)) == len(events)

    def test_unknown_as_defaults_to_stub(self):
        from repro.core.events import ObservedEvent
        event = ObservedEvent(EventKind.NEW_LINK, 777, 888, 0.0, 1.0,
                              frozenset({"vp1"}))
        assert category_pair(event, {}) == (ASCategory.STUB, ASCategory.STUB)

    def test_deterministic_with_seed(self):
        events, categories = self._make_events()
        a = select_events_balanced(events, categories, per_cell=5, seed=42)
        b = select_events_balanced(events, categories, per_cell=5, seed=42)
        assert a == b
