"""Tests for RIB graphs and Table-6 features."""

import math

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.rib import Route
from repro.core.features import (
    FEATURE_VECTOR_DIM,
    RIBGraph,
    event_feature_vector,
)

P = [Prefix.from_index(i) for i in range(8)]


def graph_from_paths(*paths):
    g = RIBGraph()
    for i, path in enumerate(paths):
        g.install(P[i], tuple(path))
    return g


class TestGraphMaintenance:
    def test_install_adds_weighted_edges(self):
        g = graph_from_paths((1, 2, 3), (1, 2, 4))
        assert g.edge_weight(1, 2) == 2
        assert g.edge_weight(2, 3) == 1
        assert g.edge_count() == 3

    def test_direction_preserved(self):
        g = graph_from_paths((1, 2))
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_reinstall_replaces_path(self):
        g = RIBGraph()
        g.install(P[0], (1, 2, 3))
        g.install(P[0], (1, 4, 3))
        assert not g.has_edge(2, 3)
        assert g.has_edge(4, 3)

    def test_withdraw_removes_edges(self):
        g = RIBGraph()
        g.install(P[0], (1, 2))
        g.withdraw(P[0])
        assert g.edge_count() == 0
        assert g.nodes() == set()

    def test_withdraw_keeps_shared_edges(self):
        g = graph_from_paths((1, 2, 3), (1, 2, 4))
        g.withdraw(P[1])
        assert g.edge_weight(1, 2) == 1

    def test_apply_update(self):
        g = RIBGraph()
        g.apply_update(BGPUpdate("vp1", 0.0, P[0], (1, 2)))
        assert g.has_edge(1, 2)
        g.apply_update(BGPUpdate("vp1", 1.0, P[0], is_withdrawal=True))
        assert g.edge_count() == 0

    def test_from_routes(self):
        g = RIBGraph.from_routes([Route(P[0], (1, 2)), Route(P[1], (1, 3))])
        assert g.degree(1) == 2

    def test_prepending_collapsed(self):
        g = graph_from_paths((1, 2, 2, 2, 3))
        assert g.edge_count() == 2


class TestDistances:
    def test_heavier_edges_are_closer(self):
        g = graph_from_paths((1, 2), (1, 2), (1, 3))
        dist = g.distances_from(1)
        assert dist[2] == pytest.approx(0.5)
        assert dist[3] == pytest.approx(1.0)

    def test_multi_hop(self):
        g = graph_from_paths((1, 2, 3))
        assert g.distances_from(1)[3] == pytest.approx(2.0)

    def test_undirected_projection(self):
        g = graph_from_paths((1, 2))
        assert g.distances_from(2)[1] == pytest.approx(1.0)

    def test_unreachable_absent(self):
        g = graph_from_paths((1, 2), (3, 4))
        assert 3 not in g.distances_from(1)


class TestNodeFeatures:
    def test_absent_node_zero_vector(self):
        g = graph_from_paths((1, 2))
        assert g.node_features(99) == (0.0,) * 6

    def test_triangle_counted(self):
        g = graph_from_paths((1, 2, 3), (2, 1, 3))
        # Edges 1-2, 2-3, 1-3 form a triangle.
        feats = g.node_features(1)
        assert feats[4] == 1.0          # triangles
        assert feats[5] > 0.0           # clustering

    def test_no_triangle_in_path(self):
        g = graph_from_paths((1, 2, 3))
        assert g.node_features(2)[4] == 0.0
        assert g.node_features(2)[5] == 0.0

    def test_star_center_has_high_closeness(self):
        g = graph_from_paths((1, 2), (1, 3), (1, 4), (1, 5))
        center = g.node_features(1)[0]
        leaf = g.node_features(2)[0]
        assert center > leaf

    def test_eccentricity_of_chain_end(self):
        g = graph_from_paths((1, 2, 3, 4))
        assert g.node_features(1)[3] == pytest.approx(3.0)
        assert g.node_features(2)[3] == pytest.approx(2.0)

    def test_average_neighbor_degree(self):
        g = graph_from_paths((1, 2, 3))
        # 2's neighbors are 1 (deg 1) and 3 (deg 1), equally weighted.
        assert g.node_features(2)[2] == pytest.approx(1.0)
        # 1's single neighbor 2 has degree 2.
        assert g.node_features(1)[2] == pytest.approx(2.0)


class TestPairFeatures:
    def test_jaccard(self):
        g = graph_from_paths((1, 3), (2, 3), (1, 4), (2, 5))
        jaccard, _, _ = g.pair_features(1, 2)
        assert jaccard == pytest.approx(1 / 3)

    def test_adamic_adar(self):
        g = graph_from_paths((1, 3), (2, 3), (3, 4))
        _, adamic, _ = g.pair_features(1, 2)
        assert adamic == pytest.approx(1.0 / math.log(3))

    def test_adamic_adar_skips_degree_one(self):
        g = graph_from_paths((1, 3), (2, 3))
        # Common neighbor 3 has degree 2, fine; but if it had degree 1
        # it would be skipped (log 1 = 0).  Check degree 2 case works.
        _, adamic, _ = g.pair_features(1, 2)
        assert adamic == pytest.approx(1.0 / math.log(2))

    def test_preferential_attachment(self):
        g = graph_from_paths((1, 2), (1, 3), (4, 5))
        _, _, pa = g.pair_features(1, 4)
        assert pa == 2.0

    def test_disconnected_pair(self):
        g = graph_from_paths((1, 2))
        assert g.pair_features(8, 9) == (0.0, 0.0, 0.0)


class TestEventFeatureVector:
    def test_dimension(self):
        g1 = graph_from_paths((1, 2, 3))
        g2 = graph_from_paths((1, 4, 3))
        vec = event_feature_vector(g1, g2, 2, 3)
        assert len(vec) == FEATURE_VECTOR_DIM == 15

    def test_identical_graphs_zero_vector(self):
        g1 = graph_from_paths((1, 2, 3))
        g2 = graph_from_paths((1, 2, 3))
        assert event_feature_vector(g1, g2, 2, 3) == [0.0] * 15

    def test_change_reflected(self):
        g1 = graph_from_paths((1, 2, 3))
        g2 = graph_from_paths((1, 3))
        vec = event_feature_vector(g1, g2, 2, 3)
        assert any(v != 0.0 for v in vec)
