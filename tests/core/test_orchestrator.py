"""Tests for the orchestrator control loop (§8)."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.workload import StreamConfig, SyntheticStreamGenerator


def small_config(**overrides):
    defaults = dict(
        component1_interval_s=600.0,
        component2_interval_s=1800.0,
        mirror_window_s=400.0,
        events_per_cell=5,
    )
    defaults.update(overrides)
    return OrchestratorConfig(**defaults)


@pytest.fixture(scope="module")
def stream():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=12, n_prefix_groups=8, duration_s=2400.0, seed=11))
    warmup, updates = generator.generate(start_time=10.0)
    return warmup + updates


class TestConfig:
    def test_bad_intervals_rejected(self):
        with pytest.raises(ValueError):
            OrchestratorConfig(component1_interval_s=0)

    def test_bad_mirror_rejected(self):
        with pytest.raises(ValueError):
            OrchestratorConfig(mirror_window_s=-1)


class TestProcessing:
    def test_bootstrap_accepts_everything(self, stream):
        orch = Orchestrator(small_config(component1_interval_s=1e9,
                                         mirror_window_s=1e9))
        retained = orch.process_stream(stream[:50])
        assert len(retained) == 50
        assert orch.stats.component1_runs == 0

    def test_refresh_fires_and_discards(self, stream):
        orch = Orchestrator(small_config())
        orch.process_stream(stream)
        assert orch.stats.component1_runs >= 2
        assert orch.stats.discarded > 0
        assert orch.stats.retention < 1.0

    def test_component2_less_frequent(self, stream):
        orch = Orchestrator(small_config())
        orch.process_stream(stream)
        assert 1 <= orch.stats.component2_runs <= orch.stats.component1_runs

    def test_out_of_order_rejected(self, stream):
        orch = Orchestrator(small_config())
        prefix = Prefix.parse("10.9.0.0/24")
        orch.process(BGPUpdate("vpX", 100.0, prefix, (1, 2)))
        with pytest.raises(ValueError):
            orch.process(BGPUpdate("vpX", 50.0, prefix, (1, 2)))

    def test_anchor_traffic_survives_refresh(self, stream):
        orch = Orchestrator(small_config())
        orch.process_stream(stream)
        assert orch.anchor_vps
        anchor = orch.anchor_vps[0]
        later = [u for u in stream if u.vp == anchor][-1]
        probe = BGPUpdate(anchor, stream[-1].time + 1.0, later.prefix,
                          later.as_path, later.communities)
        assert orch.process(probe)

    def test_stats_accounting(self, stream):
        orch = Orchestrator(small_config())
        orch.process_stream(stream)
        assert orch.stats.received == len(stream)
        assert orch.stats.retained + orch.stats.discarded == \
            orch.stats.received

    def test_force_refresh(self, stream):
        orch = Orchestrator(small_config(component1_interval_s=1e9,
                                         mirror_window_s=1e9))
        orch.process_stream(stream[:200])
        assert orch.stats.component1_runs == 0
        orch.force_refresh()
        assert orch.stats.component1_runs == 1
        assert len(orch.filters) > 0

    def test_force_refresh_without_data(self):
        orch = Orchestrator(small_config())
        with pytest.raises(RuntimeError):
            orch.force_refresh()

    def test_mirror_trimmed(self, stream):
        orch = Orchestrator(small_config(mirror_window_s=100.0,
                                         component1_interval_s=1e9))
        orch.process_stream(stream)
        horizon = stream[-1].time - 100.0
        assert all(u.time >= horizon for u in orch._mirror)
