"""Tests for the orchestrator's §14 extension hooks."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.validation import RouteValidator
from repro.core.forwarding import ForwardingRule, ForwardingService
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.workload import StreamConfig, SyntheticStreamGenerator

P1 = Prefix.parse("10.0.0.0/24")


def config():
    return OrchestratorConfig(
        component1_interval_s=600.0,
        component2_interval_s=1800.0,
        mirror_window_s=400.0,
        events_per_cell=5,
    )


@pytest.fixture(scope="module")
def stream():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=10, n_prefix_groups=6, duration_s=1500.0, seed=19))
    warmup, updates = generator.generate(start_time=10.0)
    return warmup + updates


class TestForwardingIntegration:
    def test_operator_sees_discarded_updates(self, stream):
        service = ForwardingService()
        watched = stream[0].prefix
        service.subscribe(ForwardingRule("op", prefix=watched))
        orch = Orchestrator(config(), forwarding=service)
        orch.process_stream(stream)
        delivered = service.mailbox("op")
        # The operator received every update for its prefix...
        expected = [u for u in stream if u.prefix == watched]
        assert delivered == expected
        # ...including ones the platform discarded.
        assert orch.stats.discarded > 0

    def test_no_service_no_effect(self, stream):
        orch = Orchestrator(config())
        orch.process_stream(stream[:50])
        assert orch.forwarding is None


class TestValidationIntegration:
    def test_fake_feed_quarantined(self, stream):
        validator = RouteValidator()
        orch = Orchestrator(config(), validator=validator)
        # Establish consensus first.
        honest = [u for u in stream if u.time < 700.0]
        orch.process_stream(honest)
        # A rogue peer claims a known prefix from a fabricated origin
        # over a never-seen interior path.  Pick a prefix with an
        # unambiguous majority origin.
        by_prefix = {}
        for u in honest:
            if not u.is_withdrawal:
                by_prefix.setdefault(u.prefix, set()).add(u.origin_as)
        target = next(p for p, origins in by_prefix.items()
                      if len(origins) == 1)
        fake = BGPUpdate("rogue", honest[-1].time + 1.0, target,
                         (66666, 55555, 44444))
        retained = orch.process(fake)
        assert not retained
        assert fake in orch.flagged_updates
        # The fake update never entered the mirror (training data).
        assert fake not in orch._mirror

    def test_honest_updates_unaffected(self, stream):
        validator = RouteValidator()
        orch_checked = Orchestrator(config(), validator=validator)
        retained_checked = orch_checked.process_stream(stream)
        orch_plain = Orchestrator(config())
        retained_plain = orch_plain.process_stream(stream)
        # Synthetic streams are honest: validation changes (almost)
        # nothing.  First-sight duplicates may differ marginally.
        ratio = len(retained_checked) / max(1, len(retained_plain))
        assert ratio > 0.9

    def test_flag_count_in_stats(self, stream):
        validator = RouteValidator()
        orch = Orchestrator(config(), validator=validator)
        honest = [u for u in stream if u.time < 700.0]
        orch.process_stream(honest)
        before = orch.stats.discarded
        # Target a prefix whose origin is unambiguous in the honest
        # data, so the fake origin clearly contradicts the majority.
        by_prefix = {}
        for u in honest:
            if not u.is_withdrawal:
                by_prefix.setdefault(u.prefix, set()).add(u.origin_as)
        target = next(p for p, origins in by_prefix.items()
                      if len(origins) == 1)
        fake = BGPUpdate("rogue", honest[-1].time + 1.0,
                         target, (66666, 55555, 44444))
        orch.process(fake)
        assert orch.stats.discarded == before + 1
