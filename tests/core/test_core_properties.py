"""Property-based tests on GILL's core data structures and invariants."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.correlation import (
    CorrelationGroups,
    signature,
)
from repro.core.filters import generate_filter_table
from repro.core.redundancy import (
    RedundancyDefinition,
    update_redundancy,
)
from repro.core.sampler import UpdateSampler
from repro.bgp.rib import annotate_stream

# Compact update streams: few VPs/prefixes/paths so collisions (and
# therefore interesting redundancy structure) actually happen.
updates_strategy = st.lists(
    st.builds(
        BGPUpdate,
        vp=st.sampled_from(["vp1", "vp2", "vp3", "vp4"]),
        time=st.floats(min_value=0, max_value=2000, allow_nan=False),
        prefix=st.integers(min_value=0, max_value=3).map(Prefix.from_index),
        as_path=st.lists(st.integers(min_value=1, max_value=9),
                         min_size=1, max_size=4).map(tuple),
        communities=st.sets(
            st.tuples(st.integers(min_value=1, max_value=5),
                      st.integers(min_value=0, max_value=5)),
            max_size=2).map(frozenset),
    ),
    max_size=40,
)


class TestCorrelationGroupProperties:
    @settings(max_examples=50, deadline=None)
    @given(updates=updates_strategy)
    def test_every_update_in_some_group(self, updates):
        groups = CorrelationGroups.build(updates)
        for update in updates:
            hits = groups.groups_containing(update.prefix, update)
            assert hits, f"update {update} in no group"
            assert all(signature(update) in g for g in hits)

    @settings(max_examples=50, deadline=None)
    @given(updates=updates_strategy)
    def test_weights_count_windows(self, updates):
        """Per prefix, group weights sum to the number of 100s windows."""
        groups = CorrelationGroups.build(updates)
        by_prefix = defaultdict(list)
        for u in updates:
            by_prefix[u.prefix].append(u)
        for prefix, bucket in by_prefix.items():
            bucket.sort(key=lambda u: u.time)
            windows = 0
            window_start = None
            for u in bucket:
                if window_start is None or u.time - window_start >= 100.0:
                    windows += 1
                    window_start = u.time
            total_weight = sum(
                g.weight for g in groups.groups_for_prefix(prefix))
            assert total_weight == windows

    @settings(max_examples=50, deadline=None)
    @given(updates=updates_strategy)
    def test_groups_never_cross_prefixes(self, updates):
        groups = CorrelationGroups.build(updates)
        for prefix in groups.prefixes():
            for group in groups.groups_for_prefix(prefix):
                assert group.prefix == prefix


class TestSamplerProperties:
    @settings(max_examples=30, deadline=None)
    @given(updates=updates_strategy)
    def test_partition_property(self, updates):
        """redundant + nonredundant is exactly the input multiset."""
        result = UpdateSampler().run(updates)
        combined = sorted(result.redundant + result.nonredundant,
                          key=lambda u: (u.time, u.vp, repr(u.prefix),
                                         u.as_path))
        original = sorted(updates,
                          key=lambda u: (u.time, u.vp, repr(u.prefix),
                                         u.as_path))
        assert combined == original

    @settings(max_examples=30, deadline=None)
    @given(updates=updates_strategy)
    def test_per_key_coherence(self, updates):
        """No (vp, prefix) key is split across the two classes."""
        result = UpdateSampler().run(updates)
        nonred = {(u.vp, u.prefix) for u in result.nonredundant}
        red = {(u.vp, u.prefix) for u in result.redundant}
        assert not (nonred & red)

    @settings(max_examples=30, deadline=None)
    @given(updates=updates_strategy)
    def test_filters_never_drop_nonredundant(self, updates):
        result = UpdateSampler().run(updates)
        table = generate_filter_table(result.redundant)
        for update in result.nonredundant:
            assert table.accept(update)

    @settings(max_examples=30, deadline=None)
    @given(updates=updates_strategy)
    def test_deterministic(self, updates):
        a = UpdateSampler().run(updates)
        b = UpdateSampler().run(updates)
        assert a.nonredundant == b.nonredundant
        assert a.redundant == b.redundant


class TestRedundancyProperties:
    @settings(max_examples=40, deadline=None)
    @given(updates=updates_strategy)
    def test_definitions_nested(self, updates):
        """Def-3 redundant count <= Def-2 <= Def-1 on any stream."""
        annotated = annotate_stream(
            sorted(updates, key=lambda u: u.time))
        counts = [
            update_redundancy(annotated, d).redundant_updates
            for d in RedundancyDefinition
        ]
        assert counts[0] >= counts[1] >= counts[2]

    @settings(max_examples=40, deadline=None)
    @given(updates=updates_strategy)
    def test_fraction_bounds(self, updates):
        annotated = annotate_stream(
            sorted(updates, key=lambda u: u.time))
        for definition in RedundancyDefinition:
            report = update_redundancy(annotated, definition)
            assert 0.0 <= report.fraction <= 1.0
            assert report.total_updates == len(updates)
