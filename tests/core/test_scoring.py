"""Tests for feature scoring and redundancy matrices (§18.3)."""

import numpy as np
import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.events import EventKind, ObservedEvent
from repro.core.scoring import (
    compute_event_features,
    normalize_features,
    pairwise_squared_distances,
    redundancy_scores,
    score_vps,
    update_volumes,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp, t, path, prefix=P1):
    return BGPUpdate(vp, t, prefix, path)


class TestNormalize:
    def test_zero_mean_unit_std(self):
        m = np.array([[1.0, 10.0], [3.0, 20.0], [5.0, 60.0]])
        n = normalize_features(m)
        assert np.allclose(n.mean(axis=0), 0.0)
        assert np.allclose(n.std(axis=0), 1.0)

    def test_constant_column_zeroed(self):
        m = np.array([[5.0, 1.0], [5.0, 2.0]])
        n = normalize_features(m)
        assert np.allclose(n[:, 0], 0.0)


class TestPairwiseDistances:
    def test_known_values(self):
        m = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_squared_distances(m)
        assert d[0, 1] == pytest.approx(25.0)
        assert d[0, 0] == 0.0

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        m = rng.random((5, 3))
        d = pairwise_squared_distances(m)
        assert np.allclose(d, d.T)
        assert (d >= 0).all()


class TestRedundancyScores:
    def test_identical_rows_score_one(self):
        tensor = np.zeros((2, 3, 15))
        tensor[0, 0, 0] = 1.0
        tensor[0, 1, 0] = 1.0      # VPs 0 and 1 identical
        tensor[0, 2, 0] = 5.0      # VP 2 different
        scores = redundancy_scores(tensor)
        assert scores[0, 1] == pytest.approx(1.0)
        assert scores[0, 2] < 1.0

    def test_diagonal_is_one(self):
        tensor = np.random.default_rng(2).random((3, 4, 15))
        scores = redundancy_scores(tensor)
        assert np.allclose(np.diag(scores), 1.0)

    def test_range_zero_one(self):
        tensor = np.random.default_rng(3).random((4, 6, 15))
        scores = redundancy_scores(tensor)
        assert (scores >= 0).all() and (scores <= 1).all()
        # The least redundant pair scores exactly 0.
        off = scores[~np.eye(6, dtype=bool)]
        assert off.min() == pytest.approx(0.0)

    def test_no_events_all_ones(self):
        scores = redundancy_scores(np.zeros((0, 4, 15)))
        assert np.allclose(scores, 1.0)

    def test_all_identical_vps(self):
        tensor = np.ones((2, 3, 15))
        scores = redundancy_scores(tensor)
        assert np.allclose(scores, 1.0)


class TestComputeEventFeatures:
    def _stream_and_event(self):
        stream = [
            upd("vp1", 0.0, (1, 2, 9)),
            upd("vp2", 0.0, (3, 2, 9)),
            # Event: 2-9 replaced by 5-9 for vp1 only.
            upd("vp1", 1000.0, (1, 5, 9)),
        ]
        event = ObservedEvent(EventKind.NEW_LINK, 5, 9, 900.0, 1100.0,
                              frozenset({"vp1"}))
        return stream, event

    def test_observer_has_nonzero_vector(self):
        stream, event = self._stream_and_event()
        tensor = compute_event_features(stream, [event], ["vp1", "vp2"])
        assert np.abs(tensor[0, 0]).sum() > 0     # vp1 changed
        assert np.abs(tensor[0, 1]).sum() == 0    # vp2 unaffected

    def test_change_outside_window_ignored(self):
        stream, _ = self._stream_and_event()
        early = ObservedEvent(EventKind.NEW_LINK, 5, 9, 100.0, 200.0,
                              frozenset({"vp1"}))
        tensor = compute_event_features(stream, [early], ["vp1", "vp2"])
        assert np.abs(tensor[0]).sum() == 0

    def test_unknown_vp_column_absent(self):
        stream, event = self._stream_and_event()
        tensor = compute_event_features(stream, [event], ["vp1"])
        assert tensor.shape == (1, 1, 15)


class TestScoreVPs:
    def test_identical_vps_saturate(self):
        """Two VPs reacting identically to an event score 1."""
        stream = [
            upd("vp1", 0.0, (101, 2, 9)),
            upd("vp2", 0.0, (102, 2, 9)),
            upd("vp3", 0.0, (103, 7, 9)),
            upd("vp1", 1000.0, (101, 5, 9)),
            upd("vp2", 1003.0, (102, 5, 9)),
            upd("vp3", 1005.0, (103, 8, 9)),
        ]
        events = [
            ObservedEvent(EventKind.NEW_LINK, 5, 9, 900.0, 1100.0,
                          frozenset({"vp1", "vp2"})),
            ObservedEvent(EventKind.NEW_LINK, 8, 9, 900.0, 1100.0,
                          frozenset({"vp3"})),
        ]
        vps, scores = score_vps(stream, events)
        i1, i2, i3 = (vps.index(v) for v in ("vp1", "vp2", "vp3"))
        assert scores[i1, i2] == pytest.approx(1.0)
        assert scores[i1, i3] < scores[i1, i2]

    def test_vps_inferred_from_stream(self):
        stream = [upd("vp1", 0.0, (1, 2)), upd("vp2", 1.0, (3, 2))]
        vps, scores = score_vps(stream, [])
        assert vps == ["vp1", "vp2"]
        assert scores.shape == (2, 2)


def test_update_volumes():
    stream = [upd("vp1", 0.0, (1, 2)), upd("vp1", 1.0, (1, 3)),
              upd("vp2", 2.0, (2, 3))]
    assert update_volumes(stream, ["vp1", "vp2", "vp9"]) == [2, 1, 0]
