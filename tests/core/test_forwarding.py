"""Tests for the §14 operator-forwarding extension."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.forwarding import ForwardingRule, ForwardingService

AGG = Prefix.parse("10.0.0.0/16")
P1 = Prefix.parse("10.0.1.0/24")
OTHER = Prefix.parse("192.0.2.0/24")


def upd(prefix=P1, path=(1, 2, 9), vp="vp1", t=0.0):
    return BGPUpdate(vp, t, prefix, path)


class TestForwardingRule:
    def test_requires_a_criterion(self):
        with pytest.raises(ValueError):
            ForwardingRule("op")

    def test_prefix_rule_matches_more_specifics(self):
        """An operator watching its aggregate sees hijacking
        more-specifics too."""
        rule = ForwardingRule("op", prefix=AGG)
        assert rule.matches(upd(prefix=P1))
        assert rule.matches(upd(prefix=AGG))
        assert not rule.matches(upd(prefix=OTHER))

    def test_origin_rule(self):
        rule = ForwardingRule("op", origin_as=9)
        assert rule.matches(upd(path=(1, 9)))
        assert not rule.matches(upd(path=(1, 7)))

    def test_combined_rule_needs_both(self):
        rule = ForwardingRule("op", prefix=AGG, origin_as=9)
        assert rule.matches(upd(prefix=P1, path=(1, 9)))
        assert not rule.matches(upd(prefix=P1, path=(1, 7)))
        assert not rule.matches(upd(prefix=OTHER, path=(1, 9)))

    def test_withdrawal_matches_prefix_rules(self):
        rule = ForwardingRule("op", prefix=AGG)
        w = BGPUpdate("vp1", 0.0, P1, is_withdrawal=True)
        assert rule.matches(w)

    def test_withdrawal_without_prefix_criterion(self):
        rule = ForwardingRule("op", origin_as=9)
        w = BGPUpdate("vp1", 0.0, P1, is_withdrawal=True)
        assert not rule.matches(w)


class TestForwardingService:
    def test_mailbox_delivery(self):
        service = ForwardingService()
        service.subscribe(ForwardingRule("op", prefix=AGG))
        assert service.process(upd()) == ["op"]
        assert service.process(upd(prefix=OTHER)) == []
        assert service.mailbox("op") == [upd()]

    def test_callback_delivery(self):
        received = []
        service = ForwardingService()
        service.subscribe(
            ForwardingRule("op", origin_as=9),
            callback=lambda operator, u: received.append((operator, u)))
        service.process(upd())
        assert received == [("op", upd())]
        assert service.mailbox("op") == []

    def test_one_delivery_per_operator(self):
        """Two matching rules of the same operator deliver once."""
        service = ForwardingService()
        service.subscribe(ForwardingRule("op", prefix=AGG))
        service.subscribe(ForwardingRule("op", origin_as=9))
        assert service.process(upd()) == ["op"]
        assert len(service.mailbox("op")) == 1

    def test_multiple_operators(self):
        service = ForwardingService()
        service.subscribe(ForwardingRule("a", prefix=AGG))
        service.subscribe(ForwardingRule("b", origin_as=9))
        assert sorted(service.process(upd())) == ["a", "b"]
        assert service.forwarded_count == 2

    def test_unsubscribe(self):
        service = ForwardingService()
        service.subscribe(ForwardingRule("op", prefix=AGG))
        service.subscribe(ForwardingRule("op", origin_as=9))
        assert service.unsubscribe("op") == 2
        assert service.process(upd()) == []
        assert service.rules_for("op") == []

    def test_discarded_updates_still_forwarded(self):
        """The §14 point: forwarding happens before filtering, so an
        operator sees updates GILL then discards."""
        from repro.bgp.filtering import DropRule, FilterTable
        service = ForwardingService()
        service.subscribe(ForwardingRule("op", prefix=AGG))
        table = FilterTable(drop_rules=[DropRule("vp1", P1)])
        update = upd()
        reached = service.process(update)
        retained = table.accept(update)
        assert reached == ["op"]
        assert not retained
