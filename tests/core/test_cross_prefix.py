"""Tests for the cross-prefix redundancy pass (§17.3)."""

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.cross_prefix import deduplicate_across_prefixes
from repro.core.reconstitution import PrefixSelection

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P3 = Prefix.parse("10.0.2.0/24")


def sel(prefix, updates):
    return PrefixSelection(prefix, sorted({u.vp for u in updates}),
                           list(updates), [], 1.0)


def upd(vp, t, path, prefix):
    return BGPUpdate(vp, t, prefix, path)


class TestDeduplication:
    def test_identical_subsets_demoted(self):
        """p1 and p2 see the same updates (Fig. 5's AS4 case): one
        prefix's subset survives, the other is demoted."""
        s1 = sel(P1, [upd("vp2", 100.0, (6, 2, 1, 4), P1)])
        s2 = sel(P2, [upd("vp2", 101.0, (6, 2, 1, 4), P2)])
        result = deduplicate_across_prefixes([s1, s2])
        assert len(result.nonredundant) == 1
        assert len(result.demoted) == 1
        # The smallest prefix survives.
        assert result.nonredundant[0].prefix == P1
        assert result.demoted[0].prefix == P2

    def test_different_paths_not_demoted(self):
        s1 = sel(P1, [upd("vp2", 100.0, (6, 2, 1, 4), P1)])
        s2 = sel(P2, [upd("vp2", 101.0, (6, 3, 1, 4), P2)])
        result = deduplicate_across_prefixes([s1, s2])
        assert result.demoted == []
        assert len(result.nonredundant) == 2

    def test_different_vps_not_demoted(self):
        s1 = sel(P1, [upd("vp2", 100.0, (6, 2, 1, 4), P1)])
        s2 = sel(P2, [upd("vp3", 101.0, (6, 2, 1, 4), P2)])
        result = deduplicate_across_prefixes([s1, s2])
        assert result.demoted == []

    def test_time_slack_respected(self):
        """Same attributes but far apart in time: both stay."""
        s1 = sel(P1, [upd("vp2", 100.0, (6, 2), P1)])
        s2 = sel(P2, [upd("vp2", 5000.0, (6, 2), P2)])
        result = deduplicate_across_prefixes([s1, s2])
        assert result.demoted == []

    def test_three_way_group_keeps_one(self):
        selections = [
            sel(p, [upd("vp2", 100.0 + i, (6, 2), p)])
            for i, p in enumerate((P1, P2, P3))
        ]
        result = deduplicate_across_prefixes(selections)
        assert len(result.nonredundant) == 1
        assert len(result.demoted) == 2

    def test_multi_update_subsets_must_fully_match(self):
        s1 = sel(P1, [upd("vp2", 100.0, (6, 2), P1),
                      upd("vp2", 300.0, (6, 3), P1)])
        s2 = sel(P2, [upd("vp2", 101.0, (6, 2), P2)])
        result = deduplicate_across_prefixes([s1, s2])
        assert result.demoted == []

    def test_per_vp_subsets_independent(self):
        """Only vp2's subsets match; vp1's differ, so vp1's survive for
        both prefixes while vp2 is deduplicated."""
        s1 = sel(P1, [upd("vp2", 100.0, (6, 2), P1),
                      upd("vp1", 100.0, (2, 4), P1)])
        s2 = sel(P2, [upd("vp2", 101.0, (6, 2), P2),
                      upd("vp1", 101.0, (2, 5), P2)])
        result = deduplicate_across_prefixes([s1, s2])
        demoted_vps = {u.vp for u in result.demoted}
        assert demoted_vps == {"vp2"}
        assert len(result.nonredundant) == 3

    def test_empty_input(self):
        result = deduplicate_across_prefixes([])
        assert result.nonredundant == []
        assert result.demoted == []

    def test_no_update_lost_or_duplicated(self):
        selections = [
            sel(P1, [upd("vp2", 100.0, (6, 2), P1),
                     upd("vp1", 110.0, (2, 4), P1)]),
            sel(P2, [upd("vp2", 101.0, (6, 2), P2)]),
        ]
        total_in = sum(len(s.nonredundant) for s in selections)
        result = deduplicate_across_prefixes(selections)
        assert len(result.nonredundant) + len(result.demoted) == total_in
