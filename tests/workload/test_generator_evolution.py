"""Tests for the generator's long-horizon evolution hooks."""

import pytest

from repro.workload.generator import (
    HUB_ASN_BASE,
    N_HUBS,
    StreamConfig,
    SyntheticStreamGenerator,
    VP_ASN_BASE,
)


@pytest.fixture
def generator():
    return SyntheticStreamGenerator(StreamConfig(
        n_vps=12, n_prefix_groups=8, duration_s=600.0, seed=13))


class TestAddPrefixGroups:
    def test_new_groups_distinct_prefixes(self, generator):
        before = {p for g in generator._groups for p in g}
        new_ids = generator.add_prefix_groups(3)
        after = {p for g in generator._groups for p in g}
        assert len(new_ids) == 3
        assert before < after
        assert generator.config.n_prefix_groups == 11

    def test_new_groups_generate_updates(self, generator):
        generator.add_prefix_groups(2)
        stream = generator.generate_window(1000.0, 3000.0)
        new_prefixes = {p for g in generator._groups[8:] for p in g}
        assert any(u.prefix in new_prefixes for u in stream)

    def test_zero_is_noop(self, generator):
        assert generator.add_prefix_groups(0) == []

    def test_negative_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.add_prefix_groups(-1)


class TestDriftVPs:
    def test_drift_changes_entry(self, generator):
        before = dict(generator._entry)
        drifted = generator.drift_vps(0.5)
        assert len(drifted) == 6
        changed = [vp for vp in drifted
                   if generator._entry[vp] != before[vp]]
        assert changed   # at least some moved upstream

    def test_drift_preserves_region_partition(self, generator):
        generator.drift_vps(0.5)
        seen = [vp for region in generator._regions for vp in region]
        assert sorted(seen) == sorted(generator.vps)

    def test_zero_drift_noop(self, generator):
        regions_before = [list(r) for r in generator._regions]
        assert generator.drift_vps(0.0) == []
        assert [list(r) for r in generator._regions] == regions_before

    def test_invalid_fraction(self, generator):
        with pytest.raises(ValueError):
            generator.drift_vps(1.5)


class TestIncrementalWindows:
    def test_windows_are_disjoint_in_time(self, generator):
        w1 = generator.generate_window(1000.0, 500.0)
        w2 = generator.generate_window(1500.0, 500.0)
        if w1 and w2:
            assert max(u.time for u in w1) < 1500.0 + 100.0
            assert min(u.time for u in w2) >= 1500.0

    def test_state_persists_across_windows(self, generator):
        """A chain changed in window 1 stays changed in window 2."""
        generator.generate_window(1000.0, 2000.0)
        chains_after_w1 = dict(generator._core_chain)
        generator.generate_window(3000.0, 10.0)   # tiny window
        for group, chain in chains_after_w1.items():
            # Tiny window rarely hits every group; most persist.
            pass
        assert generator._core_chain.keys() == chains_after_w1.keys()


class TestPathStructure:
    def test_hub_tier_present(self, generator):
        warmup = generator.warmup_updates()
        for update in warmup:
            assert HUB_ASN_BASE <= update.as_path[2] < HUB_ASN_BASE + N_HUBS

    def test_vp_asn_is_first_hop(self, generator):
        warmup = generator.warmup_updates()
        for update in warmup:
            assert update.as_path[0] >= VP_ASN_BASE

    def test_chatty_vps_emit_copies(self):
        config = StreamConfig(n_vps=10, n_prefix_groups=5,
                              duration_s=600.0, seed=2,
                              chattiness_levels=(3,),
                              chattiness_weights=(1.0,))
        generator = SyntheticStreamGenerator(config)
        warmup = generator.warmup_updates()
        # Every (vp, prefix) appears exactly 3 times with equal attrs.
        from collections import Counter
        counts = Counter((u.vp, u.prefix) for u in warmup)
        assert set(counts.values()) == {3}

    def test_chattiness_changes_volume_not_content(self):
        quiet = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=5, duration_s=600.0, seed=5,
            chattiness_levels=(1,), chattiness_weights=(1.0,)))
        chatty = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=5, duration_s=600.0, seed=5,
            chattiness_levels=(2,), chattiness_weights=(1.0,)))
        wq = quiet.warmup_updates()
        wc = chatty.warmup_updates()
        assert len(wc) == 2 * len(wq)
        assert {(u.vp, u.prefix, u.as_path) for u in wc} == \
            {(u.vp, u.prefix, u.as_path) for u in wq}


class TestIPv6Mix:
    def test_default_mix_contains_both_families(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=40, duration_s=300.0, seed=3))
        families = {p.family for g in generator._groups for p in g}
        assert families == {4, 6}

    def test_groups_are_single_family(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=40, duration_s=300.0, seed=3))
        for group in generator._groups:
            assert len({p.family for p in group}) == 1

    def test_v4_only_mode(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=20, duration_s=300.0, seed=3,
            ipv6_fraction=0.0))
        assert all(p.family == 4
                   for g in generator._groups for p in g)

    def test_v6_only_mode(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=20, duration_s=300.0, seed=3,
            ipv6_fraction=1.0))
        assert all(p.family == 6
                   for g in generator._groups for p in g)

    def test_new_groups_respect_mix(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=5, duration_s=300.0, seed=3,
            ipv6_fraction=1.0))
        new = generator.add_prefix_groups(3)
        for g in new:
            assert all(p.family == 6 for p in generator._groups[g])
