"""Tests for the synthetic RIS/RV-like stream generator."""

import pytest

from repro.bgp.rib import annotate_stream
from repro.core.redundancy import RedundancyDefinition, update_redundancy
from repro.workload.generator import StreamConfig, SyntheticStreamGenerator


class TestConfigValidation:
    def test_too_few_vps(self):
        with pytest.raises(ValueError):
            StreamConfig(n_vps=1)

    def test_event_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            StreamConfig(event_mix=(0.5, 0.5, 0.5, 0.5))

    def test_divergence_length_mismatch(self):
        with pytest.raises(ValueError):
            StreamConfig(divergence_levels=(0.0,),
                         divergence_weights=(0.5, 0.5))


class TestGeneration:
    @pytest.fixture(scope="class")
    def generated(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=20, n_prefix_groups=12, duration_s=1800.0, seed=4))
        warmup, stream = generator.generate()
        return generator, warmup, stream

    def test_warmup_covers_all_vp_prefix_pairs(self, generated):
        generator, warmup, _ = generated
        prefixes = {p for g in generator._groups for p in g}
        assert {(u.vp, u.prefix) for u in warmup} == {
            (vp, p) for vp in generator.vps for p in prefixes}

    def test_stream_sorted_by_time(self, generated):
        _, _, stream = generated
        times = [u.time for u in stream]
        assert times == sorted(times)

    def test_stream_within_duration(self, generated):
        _, _, stream = generated
        assert all(1000.0 <= u.time <= 1000.0 + 1800.0 + 100.0
                   for u in stream)

    def test_no_withdrawals(self, generated):
        _, warmup, stream = generated
        assert all(not u.is_withdrawal for u in warmup + stream)

    def test_deterministic(self):
        config = StreamConfig(n_vps=8, n_prefix_groups=5,
                              duration_s=600.0, seed=9)
        a = SyntheticStreamGenerator(config).generate()
        b = SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=5, duration_s=600.0, seed=9)).generate()
        assert a == b

    def test_different_seeds_differ(self):
        mk = lambda s: SyntheticStreamGenerator(StreamConfig(
            n_vps=8, n_prefix_groups=5, duration_s=600.0,
            seed=s)).generate()[1]
        assert mk(1) != mk(2)

    def test_region_of(self, generated):
        generator, _, _ = generated
        for vp in generator.vps:
            region = generator.region_of(vp)
            assert vp in generator._regions[region]
        with pytest.raises(KeyError):
            generator.region_of("vp-unknown")


class TestCalibration:
    """The §4.2 redundancy shape must hold on default settings."""

    @pytest.fixture(scope="class")
    def fractions(self):
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=30, n_prefix_groups=20, duration_s=2400.0, seed=1))
        warmup, stream = generator.generate()
        annotated = annotate_stream(warmup + stream)[len(warmup):]
        return [update_redundancy(annotated, d).fraction
                for d in RedundancyDefinition]

    def test_def1_very_high(self, fractions):
        assert fractions[0] > 0.9

    def test_def2_substantially_lower(self, fractions):
        assert 0.55 < fractions[1] < fractions[0]

    def test_def3_slightly_lower_still(self, fractions):
        assert 0.5 < fractions[2] <= fractions[1]
