"""Tests for the Figs. 2-3 growth models."""

import pytest

from repro.workload.growth import (
    active_ases,
    coverage_fraction,
    growth_series,
    quadratic_growth_factor,
    ris_vp_ases,
    rv_vp_ases,
    total_updates_per_hour,
    total_vp_count,
    updates_per_vp_per_hour,
)


class TestAnchors:
    def test_2023_ris_ases(self):
        assert ris_vp_ases(2023) == 816

    def test_2023_rv_ases(self):
        assert rv_vp_ases(2023) == 337

    def test_2023_total_vps(self):
        """RIS 1537 + RV 1130 VPs by Dec 2023 (§2)."""
        assert total_vp_count(2023) == 1537 + 1130

    def test_2023_update_rate(self):
        """28K updates/hour per VP, Dec 2023 average (§2)."""
        assert updates_per_vp_per_hour(2023) == 28_000


class TestShapes:
    def test_vp_growth_monotone(self):
        series = [ris_vp_ases(y) + rv_vp_ases(y) for y in range(2003, 2024)]
        assert series == sorted(series)

    def test_coverage_flat_around_one_percent(self):
        """Fig. 2 bottom: coverage stays in the 0.5-2% band for 20 years."""
        for year in range(2003, 2024):
            assert 0.005 < coverage_fraction(year) < 0.02

    def test_total_updates_superlinear(self):
        """Fig. 3b: the compound effect is quadratic-like (§3.2)."""
        assert quadratic_growth_factor() > 3.0

    def test_updates_2023_order_of_magnitude(self):
        """~75M updates/hour -> billions per day (§2)."""
        per_day = total_updates_per_hour(2023) * 24
        assert per_day > 1e9

    def test_interpolation_between_anchors(self):
        mid = ris_vp_ases(2005.5)
        assert ris_vp_ases(2003) < mid < ris_vp_ases(2008)

    def test_clamped_outside_range(self):
        assert ris_vp_ases(1999) == ris_vp_ases(2003)
        assert ris_vp_ases(2030) == ris_vp_ases(2023)


class TestSeries:
    def test_length(self):
        assert len(growth_series(2003, 2023)) == 21

    def test_fields_consistent(self):
        for point in growth_series():
            assert point.total_updates == pytest.approx(
                total_vp_count(point.year) * point.updates_per_vp)

    def test_bad_range(self):
        with pytest.raises(ValueError):
            growth_series(2023, 2003)
