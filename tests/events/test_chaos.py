"""Crash-recovery parity: an interrupted collection run, recovered and
resumed, converges to exactly the uninterrupted run's event store."""

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.events import EventPipeline, EventStore, journal_path_for
from repro.pipeline import (
    FaultPlan,
    InjectedCrash,
    PipelineConfig,
    SupervisorConfig,
)
from repro.simulation import monitoring_showcase
from repro.workload import split_by_vp

TIMEOUT = 60.0


def fast_supervision():
    return SupervisorConfig(backoff_initial_s=0.005, backoff_max_s=0.02,
                            watchdog_interval_s=0.02, stall_timeout_s=0.1)


def orch_config():
    return OrchestratorConfig(
        component1_interval_s=1200.0,
        component2_interval_s=4800.0,
        mirror_window_s=600.0,
        events_per_cell=5,
    )


@pytest.fixture(scope="module")
def showcase_streams():
    scenario, _ = monitoring_showcase()
    return split_by_vp(scenario.stream)


def run_with_events(directory, streams, fault_plan=None, resume=False,
                    orchestrator=None):
    """One collection epoch with the event pipeline on the seal hook."""
    archive = RollingArchiveWriter(str(directory), interval_s=300.0,
                                   compress=False, checkpoint=True)
    if resume:
        archive.recover()
    store = EventStore(journal_path_for(str(directory)))
    EventPipeline(store=store).attach(archive)
    config = PipelineConfig(n_shards=2, overflow_policy="block",
                            fault_plan=fault_plan,
                            supervision=fast_supervision())
    orchestrator = orchestrator or Orchestrator(orch_config())
    orchestrator.run_pipeline_epoch(streams, config, archive=archive,
                                    timeout=TIMEOUT, resume=resume)
    return store


class TestCrashRecoveryParity:
    def test_interrupted_store_matches_uninterrupted(
            self, showcase_streams, tmp_path):
        baseline = run_with_events(tmp_path / "baseline",
                                   showcase_streams)
        assert len(baseline) > 0        # the scenario seeds incidents

        crash_dir = tmp_path / "crash"
        with pytest.raises(InjectedCrash):
            run_with_events(crash_dir, showcase_streams,
                            fault_plan=FaultPlan.parse("crash=writer@60"))

        # Recover the archive, then resume on a fresh orchestrator;
        # attach() truncates the torn journal and regenerates it by
        # replaying the durable segments.
        recovered = run_with_events(crash_dir, showcase_streams,
                                    resume=True)
        assert recovered.snapshot_comparable() \
            == baseline.snapshot_comparable()
        # Byte-identical journals, not just equivalent stores.
        with open(journal_path_for(str(tmp_path / "baseline"))) as fh:
            baseline_journal = fh.read()
        with open(journal_path_for(str(crash_dir))) as fh:
            assert fh.read() == baseline_journal

    def test_crash_leaves_truncatable_journal(self, showcase_streams,
                                              tmp_path):
        crash_dir = tmp_path / "crash2"
        with pytest.raises(InjectedCrash):
            run_with_events(crash_dir, showcase_streams,
                            fault_plan=FaultPlan.parse("crash=writer@40"))
        # The torn journal still loads standalone (serving keeps
        # working off a crashed collector's directory).
        store = EventStore(journal_path_for(str(crash_dir)))
        assert store.watermark is None or store.watermark > 0
