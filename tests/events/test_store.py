"""Tests for the journaled event store."""

import json
import os

import pytest

from repro.events import (
    Detection,
    Event,
    EventState,
    EventStore,
    journal_path_for,
)


def detection(t=100.0, prefix="10.0.0.0/24", etype="moas",
              closes=False):
    return Detection(
        detector=etype, type=etype, key=(prefix,), time=t,
        prefix=prefix, vps=("vp1",), asns=(5, 7), closes=closes,
        summary="conflict")


def event(eid="ev-000001", etype="moas", state=EventState.NEW,
          first=100.0, last=100.0, prefix="10.0.0.0/24"):
    ev = Event(id=eid, type=etype, state=state, first_seen=first,
               last_seen=last, prefix=prefix)
    ev.absorb(detection(t=first, prefix=prefix, etype=etype))
    return ev


class TestJournalRoundTrip:
    def test_persist_and_reload(self, tmp_path):
        path = journal_path_for(str(tmp_path))
        store = EventStore(path)
        store.apply(event("ev-000001"), watermark=300.0)
        store.apply(event("ev-000002", etype="flap_storm",
                          prefix="10.1.0.0/24"), watermark=600.0)
        reloaded = EventStore(path)
        assert len(reloaded) == 2
        assert reloaded.watermark == 600.0
        assert reloaded.snapshot_comparable() \
            == store.snapshot_comparable()

    def test_upsert_is_last_writer_wins(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store = EventStore(path)
        store.apply(event("ev-000001"), watermark=300.0)
        updated = event("ev-000001", state=EventState.RESOLVED)
        updated.resolved_at = 900.0
        store.apply(updated, watermark=900.0)
        reloaded = EventStore(path)
        assert len(reloaded) == 1
        assert reloaded.get("ev-000001").state == EventState.RESOLVED

    def test_memory_only_store(self):
        store = EventStore()
        store.apply(event(), watermark=300.0)
        assert len(store) == 1 and store.path is None


class TestTornTail:
    def test_partial_last_line_dropped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store = EventStore(path)
        store.apply(event("ev-000001"), watermark=300.0)
        store.apply(event("ev-000002"), watermark=600.0)
        with open(path, "a") as handle:
            handle.write('{"op": "upsert", "waterm')   # torn mid-append
        reloaded = EventStore(path)
        assert len(reloaded) == 2

    def test_corrupt_line_stops_replay(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store = EventStore(path)
        store.apply(event("ev-000001"), watermark=300.0)
        with open(path, "a") as handle:
            handle.write("not json\n")
        # A record after the corruption is not trusted.
        line = json.dumps({"op": "upsert", "watermark": 900.0,
                           "event": event("ev-000003").to_json(full=True)})
        with open(path, "a") as handle:
            handle.write(line + "\n")
        reloaded = EventStore(path)
        assert len(reloaded) == 1


class TestTruncation:
    def test_truncate_beyond_watermark(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store = EventStore(path)
        store.apply(event("ev-000001"), watermark=300.0)
        store.apply(event("ev-000002"), watermark=600.0)
        dropped = store.load(truncate_beyond=300.0)
        assert dropped == 1
        assert len(store) == 1 and store.watermark == 300.0
        # The journal file itself was rewritten without the record.
        assert len(EventStore(path)) == 1

    def test_truncate_none_keeps_everything(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store = EventStore(path)
        store.apply(event("ev-000001"), watermark=300.0)
        assert store.load() == 0
        assert len(store) == 1


class TestRefresh:
    def test_tails_appended_records(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        writer = EventStore(path)
        writer.apply(event("ev-000001"), watermark=300.0)
        reader = EventStore(path)
        assert len(reader) == 1
        writer.apply(event("ev-000002"), watermark=600.0)
        assert reader.refresh() == ["ev-000002"]
        assert len(reader) == 2 and reader.watermark == 600.0
        assert reader.refresh() == []

    def test_reload_after_shrink(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        writer = EventStore(path)
        writer.apply(event("ev-000001"), watermark=300.0)
        writer.apply(event("ev-000002"), watermark=600.0)
        reader = EventStore(path)
        # Recovery truncation rewrites the journal shorter.
        writer.load(truncate_beyond=300.0)
        changed = reader.refresh()
        assert "ev-000002" in changed
        assert len(reader) == 1

    def test_reset_truncates(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store = EventStore(path)
        store.apply(event(), watermark=300.0)
        store.reset()
        assert len(store) == 0
        assert store.watermark is None
        assert os.path.getsize(path) == 0


class TestQuery:
    def make_store(self):
        store = EventStore()
        store.apply(event("ev-000001", "moas", EventState.RESOLVED,
                          first=100.0, last=400.0), 600.0)
        store.apply(event("ev-000002", "flap_storm", EventState.ONGOING,
                          first=500.0, last=900.0,
                          prefix="10.1.0.0/24"), 900.0)
        return store

    def test_filter_by_type_and_state(self):
        store = self.make_store()
        assert [e.id for e in store.query(type="moas")] == ["ev-000001"]
        assert [e.id for e in store.query(state="ongoing")] \
            == ["ev-000002"]
        assert store.query(type="moas", state="ongoing") == []

    def test_filter_by_prefix_and_origin(self):
        store = self.make_store()
        assert [e.id for e in store.query(prefix="10.1.0.0/24")] \
            == ["ev-000002"]
        assert len(store.query(origin=5)) == 2
        assert store.query(origin=999) == []

    def test_time_window_intersects_span(self):
        store = self.make_store()
        assert [e.id for e in store.query(start=450.0)] == ["ev-000002"]
        assert [e.id for e in store.query(end=450.0)] == ["ev-000001"]
        assert len(store.query(start=0.0, end=1000.0)) == 2

    def test_limit_and_order(self):
        store = self.make_store()
        hits = store.query(limit=1)
        assert [e.id for e in hits] == ["ev-000001"]   # first-seen order

    def test_unknown_type_and_state_raise(self):
        store = self.make_store()
        with pytest.raises(ValueError):
            store.query(type="bogus")
        with pytest.raises(ValueError):
            store.query(state="bogus")

    def test_open_and_state_counts(self):
        store = self.make_store()
        opens = store.open_counts()
        assert opens["flap_storm"] == 1
        assert opens["moas"] == 0
        states = store.state_counts()
        assert states[EventState.RESOLVED] == 1
        assert states[EventState.ONGOING] == 1
