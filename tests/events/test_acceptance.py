"""The ISSUE acceptance scenario: seeded incidents through the live
seal-hook pipeline, surfaced at ``/events`` with correct lifecycle."""

import json
import urllib.error
import urllib.request

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.events import (
    EventPipeline,
    EventState,
    EventStore,
    journal_path_for,
)
from repro.query import QueryAPIServer, QueryEngine
from repro.simulation import monitoring_showcase


@pytest.fixture(scope="module")
def showcase(tmp_path_factory):
    """The seeded scenario streamed through a live archive: the event
    pipeline only ever sees seal hooks, never a manual scan."""
    directory = str(tmp_path_factory.mktemp("showcase"))
    scenario, truth = monitoring_showcase()
    archive = RollingArchiveWriter(directory, interval_s=300.0,
                                   checkpoint=True, index=True)
    store = EventStore(journal_path_for(directory))
    pipeline = EventPipeline(store=store)
    pipeline.attach(archive)

    observed_states = {}        # event id -> set of states seen live
    for update in scenario.stream:
        if archive.write(update) is not None:
            for event in store.events():
                observed_states.setdefault(event.id,
                                           set()).add(event.state)
    archive.close()
    for event in store.events():
        observed_states.setdefault(event.id, set()).add(event.state)
    return directory, store, truth, observed_states


def get_json(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def served(showcase):
    directory, store, truth, _ = showcase
    engine = QueryEngine(directory)
    with QueryAPIServer(engine, events=store) as server:
        yield server.url, truth
    engine.close()


class TestLivePipeline:
    def test_all_required_types_detected(self, showcase):
        _, store, truth, _ = showcase
        by_type = {}
        for event in store.events():
            for etype in event.types:
                by_type.setdefault(etype, []).append(event)
        # The three types the acceptance criterion names, plus the
        # two extra seeded incidents.
        for required in ("origin_hijack", "moas", "mass_withdrawal",
                         "subprefix_hijack", "flap_storm"):
            assert required in by_type, f"no {required} event"

    def test_detections_point_at_ground_truth(self, showcase):
        _, store, truth, _ = showcase
        moas = store.query(type="moas")[0]
        assert moas.prefix == str(truth.moas_prefix)
        assert truth.moas_attacker in moas.asns
        sub = store.query(type="subprefix_hijack")[0]
        assert sub.prefix == str(truth.subprefix)
        assert truth.subprefix_attacker in sub.asns
        forged = store.query(type="origin_hijack")[0]
        assert forged.prefix == str(truth.forged_prefix)
        assert truth.forged_attacker in forged.asns

    def test_lifecycle_new_to_resolved(self, showcase):
        _, store, _, observed_states = showcase
        # Every incident ends RESOLVED...
        for event in store.events():
            assert event.state == EventState.RESOLVED
            assert event.resolved_at is not None
        # ...after having been observed open mid-run, and at least one
        # multi-segment incident passed through ONGOING.
        assert any(EventState.NEW in states
                   for states in observed_states.values())
        assert any(EventState.ONGOING in states
                   for states in observed_states.values())

    def test_store_loads_back_from_journal(self, showcase):
        directory, store, _, _ = showcase
        reloaded = EventStore(journal_path_for(directory))
        assert reloaded.snapshot_comparable() \
            == store.snapshot_comparable()


class TestEventsAPI:
    def test_events_endpoint_lists_incidents(self, served):
        url, _ = served
        status, body = get_json(url + "/events")
        assert status == 200
        assert body["count"] == len(body["events"]) >= 3
        types = {t for e in body["events"] for t in e["types"]}
        assert {"origin_hijack", "moas", "mass_withdrawal"} <= types

    def test_filter_pushdown(self, served):
        url, truth = served
        status, body = get_json(
            url + f"/events?type=moas&prefix={truth.moas_prefix}")
        assert status == 200 and body["count"] == 1
        status, body = get_json(url + "/events?state=new")
        assert status == 200 and body["count"] == 0
        status, body = get_json(
            url + f"/events?origin={truth.forged_attacker}")
        assert status == 200 and body["count"] >= 1
        status, body = get_json(url + "/events?start=0&end=100")
        assert status == 200 and body["count"] == 0
        status, body = get_json(url + "/events?limit=2")
        assert status == 200 and body["count"] == 2

    def test_single_event_with_evidence(self, served):
        url, _ = served
        _, listing = get_json(url + "/events")
        eid = listing["events"][0]["id"]
        status, body = get_json(url + f"/events/{eid}")
        assert status == 200
        assert body["event"]["id"] == eid
        assert body["event"]["evidence"]

    def test_unknown_event_404(self, served):
        url, _ = served
        status, body = get_json(url + "/events/ev-999999")
        assert status == 404 and "error" in body

    def test_bad_filter_400(self, served):
        url, _ = served
        status, _ = get_json(url + "/events?type=bogus")
        assert status == 400
        status, _ = get_json(url + "/events?frobnicate=1")
        assert status == 400

    def test_moas_served_from_event_store(self, served):
        url, truth = served
        status, body = get_json(url + "/moas")
        assert status == 200 and body["source"] == "events"
        assert any(c["prefix"] == str(truth.moas_prefix)
                   for c in body["conflicts"])
        # The historical scan path stays reachable.
        status, body = get_json(url + "/moas?source=scan")
        assert status == 200 and body["source"] == "scan"

    def test_hijacks_served_from_event_store(self, served):
        url, truth = served
        status, body = get_json(url + "/hijacks")
        assert status == 200 and body["source"] == "events"
        assert any(c["prefix"] == str(truth.forged_prefix)
                   for c in body["cases"])

    def test_hijack_scan_model_cached(self, served):
        url, _ = served
        status, first = get_json(url + "/hijacks?source=scan")
        assert status == 200 and first["model_cache"] == "miss"
        # Different threshold, same window: answered from the cache.
        status, second = get_json(
            url + "/hijacks?source=scan&threshold=0.9")
        assert status == 200 and second["model_cache"] == "hit"

    def test_status_reports_event_block(self, served):
        url, _ = served
        status, body = get_json(url + "/status")
        assert status == 200
        assert body["events"]["total"] >= 3
        assert body["events"]["states"]["resolved"] >= 3
        assert body["hijack_model_cache"]["hits"] >= 1

    def test_metrics_exports_open_gauge(self, served):
        url, _ = served
        status, body = get_json(url + "/metrics?format=json")
        assert status == 200
        families = {f["name"] for f in body["families"]}
        assert "repro_events_open" in families


class TestNoStoreFallback:
    def test_events_404_without_store(self, showcase):
        directory, _, _, _ = showcase
        engine = QueryEngine(directory)
        with QueryAPIServer(engine) as server:
            status, body = get_json(server.url + "/events")
            assert status == 404
            # /moas silently falls back to the on-demand scan.
            status, body = get_json(server.url + "/moas")
            assert status == 200 and body["source"] == "scan"
        engine.close()
