"""Tests for the correlator and the seal-hook event pipeline."""

import pytest

from repro.bgp.archive import ArchiveSegment, RollingArchiveWriter
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.events import (
    Detection,
    Event,
    EventCorrelator,
    EventPipeline,
    EventState,
    EventStore,
)
from repro.telemetry import MetricsRegistry

P1 = Prefix.parse("10.0.0.0/24")
P1_SUB = Prefix.parse("10.0.0.0/26")
P2 = Prefix.parse("10.1.0.0/24")


def det(detector="moas", etype="moas", key=("10.0.0.0/24",),
        t=100.0, prefix="10.0.0.0/24", closes=False, lifecycle=True,
        vps=("vp1",), asns=(5, 7)):
    return Detection(detector=detector, type=etype, key=tuple(key),
                     time=t, prefix=prefix, vps=vps, asns=asns,
                     closes=closes, lifecycle=lifecycle,
                     summary="test detection")


class TestCorrelatorLifecycle:
    def test_open_continue_close_resolve(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        changed, opened, resolved = correlator.process(
            [det(t=100.0)], watermark=300.0)
        assert len(opened) == 1 and not resolved
        ev = opened[0]
        assert ev.state == EventState.NEW
        assert ev.open_keys

        # Same key next segment: same event, now ONGOING.
        changed, opened, resolved = correlator.process(
            [det(t=400.0)], watermark=600.0)
        assert not opened and not resolved
        assert changed == [ev]
        assert ev.state == EventState.ONGOING
        assert ev.segments == 2

        # The close clears the key but the quiet period gates RESOLVED.
        changed, opened, resolved = correlator.process(
            [det(t=700.0, closes=True)], watermark=900.0)
        assert not resolved
        assert not ev.open_keys

        _, _, resolved = correlator.process([], watermark=1500.0)
        assert resolved == [ev]
        assert ev.state == EventState.RESOLVED
        assert ev.resolved_at == ev.last_seen

    def test_not_resolved_while_keys_open(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        _, opened, _ = correlator.process([det(t=100.0)], 300.0)
        ev = opened[0]
        # Quiet for ages, but never closed: stays open.
        _, _, resolved = correlator.process([], watermark=99000.0)
        assert resolved == []
        assert ev.is_open

    def test_stale_close_dropped(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        changed, opened, resolved = correlator.process(
            [det(closes=True)], watermark=300.0)
        assert changed == [] and opened == [] and resolved == []

    def test_non_lifecycle_resolves_quietly(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        _, opened, _ = correlator.process(
            [det(detector="origin_hijack", etype="origin_hijack",
                 lifecycle=False, t=100.0)], 300.0)
        ev = opened[0]
        assert not ev.open_keys
        _, _, resolved = correlator.process([], watermark=900.0)
        assert resolved == [ev]

    def test_reopen_merges_into_same_event(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        _, opened, _ = correlator.process(
            [det(t=100.0)], watermark=300.0)
        ev = opened[0]
        correlator.process([det(t=350.0, closes=True)], 600.0)
        # Flaps back before the quiet period elapses: same incident.
        _, reopened, _ = correlator.process([det(t=650.0)], 900.0)
        assert reopened == []
        assert ev.open_keys and ev.segments == 3

    def test_cross_detector_prefix_merge(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        _, opened, _ = correlator.process(
            [det(t=100.0)], watermark=300.0)
        ev = opened[0]
        _, opened2, _ = correlator.process(
            [det(detector="origin_hijack", etype="origin_hijack",
                 key=([5, 7], "10.0.0.0/24"), t=400.0,
                 lifecycle=False)],
            watermark=600.0)
        assert opened2 == []                   # merged, not new
        assert set(ev.types) == {"moas", "origin_hijack"}
        assert set(ev.detectors) == {"moas", "origin_hijack"}

    def test_distinct_prefixes_stay_distinct(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        _, opened, _ = correlator.process(
            [det(t=100.0),
             det(key=("10.1.0.0/24",), prefix="10.1.0.0/24", t=110.0)],
            watermark=300.0)
        assert len(opened) == 2

    def test_event_ids_are_sequential(self):
        correlator = EventCorrelator(resolve_after_s=600.0)
        _, opened, _ = correlator.process(
            [det(t=100.0),
             det(key=("10.1.0.0/24",), prefix="10.1.0.0/24", t=110.0)],
            watermark=300.0)
        assert [e.id for e in opened] == ["ev-000001", "ev-000002"]


def seg(start, end, updates):
    return ArchiveSegment(start=start, end=end, path="<memory>",
                          count=len(updates))


class TestEventPipeline:
    def moas_updates(self):
        first = [BGPUpdate("vp1", 10.0, P1, (1, 5)),
                 BGPUpdate("vp2", 11.0, P1, (2, 5))]
        second = [BGPUpdate("vp2", 310.0, P1, (2, 7))]
        third = [BGPUpdate("vp2", 610.0, P1, (2, 5))]
        return first, second, third

    def test_process_segments_materializes_events(self):
        store = EventStore()
        pipeline = EventPipeline(store=store)
        first, second, third = self.moas_updates()
        pipeline.process_segment(seg(0.0, 300.0, first), first)
        changed = pipeline.process_segment(seg(300.0, 600.0, second),
                                           second)
        assert len(changed) == 1
        assert store.open_counts()["moas"] == 1
        pipeline.process_segment(seg(600.0, 900.0, third), third)
        # Quiet segments pass the resolve window.
        for start in (900.0, 1200.0, 1500.0):
            pipeline.process_segment(seg(start, start + 300.0, []), [])
        events = store.events()
        assert len(events) == 1
        assert events[0].state == EventState.RESOLVED

    def test_metrics_families_updated(self):
        registry = MetricsRegistry()
        pipeline = EventPipeline(store=EventStore(), registry=registry)
        first, second, _ = self.moas_updates()
        pipeline.process_segment(seg(0.0, 300.0, first), first)
        pipeline.process_segment(seg(300.0, 600.0, second), second)
        doc = registry.to_json()
        families = {f["name"]: f for f in doc["families"]}
        assert "repro_events_detector_seconds" in families
        segments = families["repro_events_segments_total"]["samples"]
        assert segments[0]["value"] == 2
        opened = {
            s["labels"]["type"]: s["value"]
            for s in families["repro_events_opened_total"]["samples"]}
        assert opened.get("moas") == 1
        open_gauge = {
            s["labels"]["type"]: s["value"]
            for s in families["repro_events_open"]["samples"]}
        assert open_gauge.get("moas") == 1

    def test_attach_live_seal_hook(self, tmp_path):
        store = EventStore()
        pipeline = EventPipeline(store=store)
        archive = RollingArchiveWriter(str(tmp_path), interval_s=300.0,
                                       compress=False)
        pipeline.attach(archive)
        first, second, _ = self.moas_updates()
        archive.write_stream(first + second)
        archive.close()
        assert store.open_counts()["moas"] == 1
        assert store.watermark == 600.0

    def test_attach_replays_existing_segments(self, tmp_path):
        archive = RollingArchiveWriter(str(tmp_path), interval_s=300.0,
                                       compress=False, checkpoint=True)
        first, second, _ = self.moas_updates()
        archive.write_stream(first + second)
        archive.close()

        resumed = RollingArchiveWriter(str(tmp_path), interval_s=300.0,
                                       compress=False, checkpoint=True)
        resumed.recover()
        store = EventStore()
        EventPipeline(store=store).attach(resumed)
        assert len(store.events()) == 1
        assert store.open_counts()["moas"] == 1

    def test_attach_empty_archive_with_populated_store_raises(
            self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store = EventStore(path)
        store.apply(
            Event(id="ev-000001", type="moas", state=EventState.NEW,
                  first_seen=1.0, last_seen=1.0),
            watermark=300.0)
        archive = RollingArchiveWriter(str(tmp_path / "arch"),
                                       interval_s=300.0)
        pipeline = EventPipeline(store=store)
        with pytest.raises(ValueError):
            pipeline.attach(archive)

    def test_sync_regenerates_journal_from_scratch(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        archive = RollingArchiveWriter(str(tmp_path / "arch"),
                                       interval_s=300.0,
                                       compress=False, checkpoint=True)
        first, second, _ = self.moas_updates()
        archive.write_stream(first + second)
        archive.close()

        live = EventStore(path)
        EventPipeline(store=live).attach(archive, replay=True)
        with open(path) as handle:
            live_journal = handle.read()

        # A second pipeline over the same archive regenerates the
        # exact same journal bytes (determinism).
        EventPipeline(store=EventStore(path)).attach(archive)
        with open(path) as handle:
            assert handle.read() == live_journal
