"""Unit tests for the streaming detectors."""

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.events import (
    FlapStormDetector,
    MassWithdrawalDetector,
    MOASStreamDetector,
    OriginHijackStreamDetector,
    SubPrefixStreamDetector,
    default_detectors,
)

P1 = Prefix.parse("10.0.0.0/24")
P1_SUB = Prefix.parse("10.0.0.0/26")
P2 = Prefix.parse("10.1.0.0/24")


def ann(vp, t, prefix, path):
    return BGPUpdate(vp, t, prefix, tuple(path))


def wd(vp, t, prefix):
    return BGPUpdate(vp, t, prefix, is_withdrawal=True)


class TestOriginHijackStream:
    def training(self):
        # A known graph: 1-2, 2-3, 1-4, 4-3 (a well-meshed core).
        return [
            ann("vp1", 0.0, P1, (1, 2, 3)),
            ann("vp2", 1.0, P1, (4, 3)),
            ann("vp1", 2.0, P2, (1, 4)),
        ]

    def test_first_segment_trains_silently(self):
        detector = OriginHijackStreamDetector()
        assert detector.observe(self.training(), 0.0, 300.0) == []

    def test_implausible_link_flagged_every_segment(self):
        detector = OriginHijackStreamDetector()
        detector.observe(self.training(), 0.0, 300.0)
        # AS8-AS9 touch nothing in the known graph: maximally
        # suspicious, and never absorbed.
        forged = [ann("vp1", 310.0, P2, (8, 9))]
        first = detector.observe(forged, 300.0, 600.0)
        assert len(first) == 1
        d = first[0]
        assert d.type == "origin_hijack"
        assert not d.lifecycle
        assert d.extra["link"] == [8, 9]
        assert d.score >= 0.6
        # Still announced next segment: same incident re-evidenced.
        again = detector.observe([ann("vp1", 610.0, P2, (8, 9))],
                                 600.0, 900.0)
        assert len(again) == 1
        assert again[0].key_id == d.key_id
        assert again[0].score == d.score

    def test_plausible_link_absorbed_silently(self):
        detector = OriginHijackStreamDetector()
        detector.observe(self.training(), 0.0, 300.0)
        # AS2-AS4 share neighbors 1 and 3: plausible, absorbed.
        found = detector.observe([ann("vp1", 310.0, P2, (2, 4))],
                                 300.0, 600.0)
        assert found == []
        assert (2, 4) in detector.dfoh._known_links

    def test_withdrawal_produces_no_evidence(self):
        detector = OriginHijackStreamDetector()
        detector.observe(self.training(), 0.0, 300.0)
        assert detector.observe([wd("vp1", 310.0, P2)],
                                300.0, 600.0) == []


class TestSubPrefixStream:
    def test_foreign_more_specific_flagged(self):
        detector = SubPrefixStreamDetector()
        out = detector.observe([ann("vp1", 0.0, P1, (1, 5))],
                               0.0, 300.0)
        assert out == []                       # ownership learned
        out = detector.observe([ann("vp1", 310.0, P1_SUB, (1, 9))],
                               300.0, 600.0)
        assert len(out) == 1
        d = out[0]
        assert d.type == "subprefix_hijack"
        assert d.asns == (9, 5)
        assert d.extra["covering"] == str(P1)
        assert not d.closes

    def test_close_when_last_vp_withdraws(self):
        detector = SubPrefixStreamDetector()
        detector.observe([ann("vp1", 0.0, P1, (1, 5))], 0.0, 300.0)
        detector.observe([ann("vp1", 310.0, P1_SUB, (1, 9)),
                          ann("vp2", 311.0, P1_SUB, (2, 9))],
                         300.0, 600.0)
        # First VP withdrawing does not close it...
        out = detector.observe([wd("vp1", 610.0, P1_SUB)], 600.0, 900.0)
        assert out == []
        # ...the last one does.
        out = detector.observe([wd("vp2", 910.0, P1_SUB)], 900.0, 1200.0)
        assert len(out) == 1 and out[0].closes

    def test_own_more_specific_not_flagged(self):
        detector = SubPrefixStreamDetector()
        detector.observe([ann("vp1", 0.0, P1, (1, 5))], 0.0, 300.0)
        out = detector.observe([ann("vp1", 310.0, P1_SUB, (1, 5))],
                               300.0, 600.0)
        assert out == []


class TestMOASStream:
    def test_open_and_close(self):
        detector = MOASStreamDetector()
        out = detector.observe([ann("vp1", 0.0, P1, (1, 5))],
                               0.0, 300.0)
        assert out == []
        out = detector.observe([ann("vp2", 310.0, P1, (2, 7))],
                               300.0, 600.0)
        assert len(out) == 1
        assert out[0].type == "moas" and not out[0].closes
        assert out[0].extra["origins"] == [5, 7]
        # vp2 moves back to the legitimate origin: conflict over.
        out = detector.observe([ann("vp2", 610.0, P1, (2, 5))],
                               600.0, 900.0)
        assert len(out) == 1 and out[0].closes

    def test_withdrawal_resolves(self):
        detector = MOASStreamDetector()
        detector.observe([ann("vp1", 0.0, P1, (1, 5)),
                          ann("vp2", 1.0, P1, (2, 7))], 0.0, 300.0)
        out = detector.observe([wd("vp2", 310.0, P1)], 300.0, 600.0)
        assert len(out) == 1 and out[0].closes

    def test_bogon_origin_ignored(self):
        detector = MOASStreamDetector()
        out = detector.observe([ann("vp1", 0.0, P1, (1, 5)),
                                ann("vp2", 1.0, P1, (2, 64512))],
                               0.0, 300.0)
        assert out == []


class TestMassWithdrawal:
    def test_burst_opens_and_calm_closes(self):
        detector = MassWithdrawalDetector(min_count=5)
        calm = [wd("vp1", 10.0, P1)]
        assert detector.observe(calm, 0.0, 300.0) == []
        burst = [wd(f"vp{i}", 310.0 + i, P1) for i in range(8)]
        out = detector.observe(burst, 300.0, 600.0)
        assert len(out) == 1
        assert out[0].type == "mass_withdrawal" and not out[0].closes
        assert out[0].extra["withdrawals"] == 8
        out = detector.observe([], 600.0, 900.0)
        assert len(out) == 1 and out[0].closes
        assert out[0].time == 600.0

    def test_burst_does_not_feed_baseline(self):
        detector = MassWithdrawalDetector(min_count=5)
        detector.observe([], 0.0, 300.0)
        burst = [wd(f"vp{i}", 310.0, P1) for i in range(50)]
        detector.observe(burst, 300.0, 600.0)
        assert detector._baseline < 1.0


class TestFlapStorm:
    def test_storm_opens_then_decays_closed(self):
        detector = FlapStormDetector(half_life_s=300.0, suppress=4.0,
                                     reuse=1.5)
        # Re-announce every 60s: penalty compounds past suppress.
        flaps = [ann("vp1", float(t), P1, (1, 5))
                 for t in range(0, 600, 60)]
        out = detector.observe(flaps, 0.0, 600.0)
        opens = [d for d in out if not d.closes]
        assert len(opens) == 1
        assert opens[0].type == "flap_storm"
        # Quiet segments: the penalty decays below reuse and closes.
        closed = []
        end = 600.0
        for _ in range(4):
            closed += detector.observe([], end, end + 300.0)
            end += 300.0
        assert any(d.closes for d in closed)
        close = next(d for d in closed if d.closes)
        assert close.extra["penalty"] <= 1.5

    def test_slow_updates_never_suppress(self):
        detector = FlapStormDetector(half_life_s=300.0, suppress=4.0)
        slow = [ann("vp1", float(t), P1, (1, 5))
                for t in range(0, 3600, 600)]
        assert detector.observe(slow, 0.0, 3600.0) == []


def test_default_detectors_cover_all_types():
    names = {d.name for d in default_detectors()}
    assert names == {"origin_hijack", "subprefix", "moas",
                     "mass_withdrawal", "flap_storm"}
