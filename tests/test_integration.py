"""End-to-end integration tests across subsystems.

These exercise full pipelines rather than single modules: simulator →
collection → GILL → filters → analyses, and the worked example of the
paper's Figs. 5/10.
"""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.rib import annotate_stream
from repro.core import (
    CorrelationGroups,
    GillSampler,
    UpdateSampler,
    reconstitution_power,
)
from repro.simulation import (
    ASTopology,
    ForgedOriginHijack,
    LinkFailure,
    LinkRestoration,
    SimulatedInternet,
    assign_prefix_ownership,
    random_vp_deployment,
    synthetic_known_topology,
)
from repro.usecases import (
    PathChange,
    hijack_visible,
    localize_failure,
    observed_as_links,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P3 = Prefix.parse("10.0.2.0/24")


@pytest.fixture
def fig5_net():
    topo = ASTopology()
    topo.add_p2p(1, 2)
    topo.add_c2p(4, 1)
    topo.add_c2p(4, 2)
    topo.add_c2p(3, 1)
    topo.add_c2p(6, 2)
    topo.add_c2p(5, 2)
    topo.add_c2p(7, 5)
    topo.add_p2p(5, 6)
    net = SimulatedInternet(topo, seed=0)
    net.announce_prefix(P1, 4)
    net.announce_prefix(P2, 4)
    net.announce_prefix(P3, 6)
    net.deploy_vps([2, 3, 5, 6])
    return net


class TestFig5Scenario:
    """The motivating example of §4.1/§5 end to end."""

    def test_repeated_events_build_heavy_groups(self, fig5_net):
        stream = []
        t = 1000.0
        for _ in range(3):
            stream += fig5_net.apply_event(LinkFailure(2, 4, time=t))
            stream += fig5_net.apply_event(
                LinkRestoration(2, 4, time=t + 3000))
            t += 8000.0
        groups = CorrelationGroups.build(stream)
        weights = sorted(g.weight for g in groups.groups_for_prefix(P1))
        # The restore-state group repeats; the failure state repeats too.
        assert weights[-1] >= 2

    def test_component1_finds_cross_prefix_redundancy(self, fig5_net):
        """p1 and p2 (both AS4's) move together: step 3 demotes one."""
        stream = []
        t = 1000.0
        for _ in range(3):
            stream += fig5_net.apply_event(LinkFailure(2, 4, time=t))
            stream += fig5_net.apply_event(
                LinkRestoration(2, 4, time=t + 3000))
            t += 8000.0
        result = UpdateSampler().run(stream)
        assert result.demoted_count > 0
        # Updates survive for at most one of the twin prefixes per VP.
        p1_vps = {u.vp for u in result.nonredundant if u.prefix == P1}
        p2_vps = {u.vp for u in result.nonredundant if u.prefix == P2}
        assert not (p1_vps & p2_vps)

    def test_single_vp_reconstitutes_the_other(self, fig5_net):
        """One of the two affected VPs suffices to rebuild both (§17.2)."""
        stream = []
        t = 1000.0
        for _ in range(2):
            stream += fig5_net.apply_event(LinkFailure(2, 4, time=t))
            stream += fig5_net.apply_event(
                LinkRestoration(2, 4, time=t + 3000))
            t += 8000.0
        p1_updates = [u for u in stream if u.prefix == P1]
        groups = CorrelationGroups.build(stream)
        powers = []
        for vp in sorted({u.vp for u in p1_updates}):
            u = [x for x in p1_updates if x.vp == vp]
            powers.append(reconstitution_power(p1_updates, u, groups))
        assert max(powers) == 1.0

    def test_hijack_detected_only_from_nearby_vp(self, fig5_net):
        updates = fig5_net.apply_event(
            ForgedOriginHijack(7, P3, time=500.0, type_x=1))
        assert hijack_visible(updates, P3, attacker=7)
        far_only = [u for u in updates if u.vp in ("vp3",)]
        assert not hijack_visible(far_only, P3, attacker=7)

    def test_failure_localizable_from_both_directions(self, fig5_net):
        """§5: updates from VPs on both sides pin down link 2-4."""
        prior = {}
        for prefix in fig5_net.prefixes():
            routes = fig5_net.routes_for(prefix)
            for asn in fig5_net.vp_ases:
                route = routes.get(asn)
                if route:
                    prior[(f"vp{asn}", prefix)] = route.path
        updates = fig5_net.apply_event(LinkFailure(2, 4, time=1000.0))
        changes = [
            PathChange(prior[(u.vp, u.prefix)],
                       () if u.is_withdrawal else u.as_path)
            for u in updates if (u.vp, u.prefix) in prior
        ]
        assert localize_failure(changes, (2, 4))


class TestSimulatorToGillPipeline:
    """Simulator stream -> GILL -> filters -> analyses, at small scale."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        import random
        topo = synthetic_known_topology(100, seed=20)
        net = SimulatedInternet(topo, seed=20)
        net.announce_ownership(
            assign_prefix_ownership(topo.ases(), 120, seed=20))
        net.deploy_vps(random_vp_deployment(topo, 0.3, seed=21))
        rng = random.Random(22)
        links = [(a, b) for a, b, _ in net.topo.links()]
        stream = []
        t = 1000.0
        for _ in range(20):
            a, b = links[rng.randrange(len(links))]
            try:
                stream += net.apply_event(LinkFailure(a, b, t))
                stream += net.apply_event(
                    LinkRestoration(a, b, t + 600.0))
            except ValueError:
                pass
            t += 1500.0
        stream.sort(key=lambda u: u.time)
        result = GillSampler(events_per_cell=5, seed=20).run(
            stream, topology=topo)
        return topo, stream, result

    def test_substantial_discard(self, pipeline):
        _, stream, result = pipeline
        retained = result.sample(stream)
        assert len(retained) < len(stream)

    def test_filters_consistent_with_classification(self, pipeline):
        _, stream, result = pipeline
        for update in result.component1.nonredundant:
            assert result.filters.accept(update)

    def test_anchor_vps_are_deployed_vps(self, pipeline):
        _, stream, result = pipeline
        stream_vps = {u.vp for u in stream}
        assert set(result.anchor_vps) <= stream_vps

    def test_retained_sample_still_maps_topology(self, pipeline):
        """The discarded majority contributes few unique links."""
        _, stream, result = pipeline
        retained = result.sample(stream)
        all_links = observed_as_links(stream)
        kept_links = observed_as_links(retained)
        assert len(kept_links) >= 0.6 * len(all_links)


class TestAnnotationConsistency:
    def test_annotate_stream_matches_manual_replay(self):
        from repro.bgp.rib import RIB
        from repro.workload import StreamConfig, SyntheticStreamGenerator
        generator = SyntheticStreamGenerator(StreamConfig(
            n_vps=6, n_prefix_groups=4, duration_s=600.0, seed=30))
        warmup, stream = generator.generate()
        data = warmup + stream
        annotated = annotate_stream(data)
        ribs = {}
        for raw, ann in zip(data, annotated):
            rib = ribs.setdefault(raw.vp, RIB(raw.vp))
            expected = rib.apply(raw)
            assert ann == expected
