"""Tests for the feed layer (§9 ingestion paths)."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.mrt import write_archive
from repro.bgp.prefix import Prefix
from repro.platform.feeds import (
    ArchiveFeed,
    DumpProxy,
    ListFeed,
    merge_feeds,
    ris_live_decode,
    ris_live_encode,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp, t, path=(1, 2), prefix=P1, comms=()):
    return BGPUpdate(vp, t, prefix, path, frozenset(comms))


class TestRISLiveCodec:
    def test_announcement_roundtrip(self):
        u = upd("rrc00-peer1", 12.5, (6, 2, 1), comms={(6, 100)})
        decoded = ris_live_decode(ris_live_encode(u))
        assert decoded == [u]

    def test_withdrawal_roundtrip(self):
        u = BGPUpdate("vp1", 3.0, P1, is_withdrawal=True)
        assert ris_live_decode(ris_live_encode(u)) == [u]

    def test_multi_prefix_message(self):
        message = ris_live_encode(upd("vp1", 1.0))
        import json
        envelope = json.loads(message)
        envelope["data"]["announcements"][0]["prefixes"].append(str(P2))
        decoded = ris_live_decode(json.dumps(envelope))
        assert {u.prefix for u in decoded} == {P1, P2}

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError):
            ris_live_decode('{"type": "ris_error", "data": {}}')


class TestFeeds:
    def test_list_feed_sorts(self):
        feed = ListFeed("a", [upd("v", 2.0), upd("v", 1.0)])
        assert [u.time for u in feed] == [1.0, 2.0]

    def test_archive_feed(self, tmp_path):
        updates = [upd("v", float(i)) for i in range(5)]
        path = str(tmp_path / "a.mrt.bz2")
        write_archive(updates, path)
        feed = ArchiveFeed("arch", path)
        assert list(feed) == updates

    def test_merge_feeds_time_ordered(self):
        a = ListFeed("a", [upd("a", 1.0), upd("a", 3.0)])
        b = ListFeed("b", [upd("b", 2.0), upd("b", 4.0)])
        merged = list(merge_feeds(a, b))
        assert [u.time for u in merged] == [1.0, 2.0, 3.0, 4.0]

    def test_merge_empty(self):
        assert list(merge_feeds()) == []
        assert list(merge_feeds(ListFeed("a", []))) == []


class TestDumpProxy:
    def test_availability_rounds_up_to_period(self):
        proxy = DumpProxy("rv", [], period_s=900.0)
        assert proxy.availability(upd("v", 100.0)) == 900.0
        assert proxy.availability(upd("v", 900.0)) == 900.0
        assert proxy.availability(upd("v", 901.0)) == 1800.0

    def test_iteration_in_availability_order(self):
        # 950 becomes available at 1800; 1750 also at 1800; 100 at 900.
        updates = [upd("v", 950.0), upd("v", 100.0), upd("v", 1750.0)]
        proxy = DumpProxy("rv", updates, period_s=900.0)
        assert [u.time for u in proxy] == [100.0, 950.0, 1750.0]

    def test_max_delay_bounded_by_period(self):
        updates = [upd("v", t) for t in (1.0, 450.0, 899.0)]
        proxy = DumpProxy("rv", updates, period_s=900.0)
        assert 0.0 < proxy.max_delay() <= 900.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            DumpProxy("rv", [], period_s=0.0)

    def test_merge_live_and_proxied(self):
        """The §9 setup: RIS-live (instant) + RV (proxied dumps)."""
        live = ListFeed("ris", [upd("ris", t) for t in (10.0, 500.0)])
        proxied = DumpProxy("rv", [upd("rv", 20.0)], period_s=900.0)
        # Merge on original timestamps: the platform stores by update
        # time, even if the RV update arrived late.
        merged = list(merge_feeds(live, proxied))
        assert [u.vp for u in merged] == ["ris", "rv", "ris"]
