"""Tests for platform models and the survey data (§2, §13, §16)."""

import pytest

from repro.platform.collectors import (
    ACTIVE_ASES_2023,
    Platform,
    combined_coverage,
    deployment_coverage,
    known_platforms,
    ris_platform,
    rv_platform,
)
from repro.platform.survey import (
    PAPERS_SELECTED,
    RESPONDENTS_C1,
    RESPONDENTS_C2,
    SURVEY,
    Category,
    Sentiment,
    questions,
    render_table,
    sentiment_summary,
)
from repro.simulation.topology import synthetic_known_topology


class TestPlatforms:
    def test_ris_facts(self):
        ris = ris_platform()
        assert ris.vp_count == 1537
        assert ris.distinct_ases == 816

    def test_rv_facts(self):
        rv = rv_platform()
        assert rv.vp_count == 1130
        assert rv.distinct_ases == 337

    def test_combined_coverage_about_one_percent(self):
        """§3.1: RIS + RV cover ~1.1% of active ASes."""
        coverage = combined_coverage([ris_platform(), rv_platform()])
        assert 0.009 < coverage < 0.013

    def test_all_known_platforms_tiny_coverage(self):
        """§13: every platform's coverage is below 2%."""
        for platform in known_platforms():
            assert platform.coverage() < 0.03

    def test_deployment_coverage(self):
        topo = synthetic_known_topology(100, seed=1)
        ases = topo.ases()[:25]
        assert deployment_coverage(topo, ases) == pytest.approx(0.25)

    def test_deployment_coverage_ignores_unknown(self):
        topo = synthetic_known_topology(100, seed=1)
        assert deployment_coverage(topo, [999999]) == 0.0


class TestSurvey:
    def test_respondent_counts(self):
        assert PAPERS_SELECTED == 11
        assert RESPONDENTS_C1 == 7
        assert RESPONDENTS_C2 == 5

    def test_c1_vp_selection_answers_sum_to_respondents(self):
        """Each C1 respondent gave one VP-selection answer."""
        question = questions(Category.SUBSET_OF_VPS)[1]
        assert question.respondents == RESPONDENTS_C1

    def test_c1_why_subset_answers(self):
        question = questions(Category.SUBSET_OF_VPS)[0]
        assert question.respondents >= 6

    def test_green_dominates(self):
        """The survey's headline: most answers motivate GILL."""
        summary = sentiment_summary()
        assert summary[Sentiment.MOTIVATES] > summary[Sentiment.NEUTRAL]
        assert summary[Sentiment.MOTIVATES] > \
            summary[Sentiment.DISINCENTIVES]

    def test_few_red_answers(self):
        assert sentiment_summary()[Sentiment.DISINCENTIVES] <= 2

    def test_all_categories_present(self):
        assert questions(Category.SUBSET_OF_VPS)
        assert questions(Category.LIMITED_DURATION)
        assert questions(Category.ALL)

    def test_render_table(self):
        text = render_table()
        assert "[C1]" in text and "[C2]" in text and "[all]" in text
        assert "(green)" in text and "(red)" in text
        # Every question appears.
        assert sum(1 for line in text.splitlines()
                   if line.startswith("[")) == len(SURVEY)
