"""Tests for the platform status page."""

import pytest

from repro.bgp.session import PeeringDB, PeeringRequest, SessionManager
from repro.bgp.validation import RouteValidator
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.platform.status import collect_status, render_status
from repro.workload import StreamConfig, SyntheticStreamGenerator


@pytest.fixture(scope="module")
def run():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=10, n_prefix_groups=6, duration_s=1500.0, seed=23))
    warmup, stream = generator.generate(start_time=10.0)
    data = warmup + stream
    orchestrator = Orchestrator(
        OrchestratorConfig(component1_interval_s=600.0,
                           component2_interval_s=1800.0,
                           mirror_window_s=400.0,
                           events_per_cell=5),
        validator=RouteValidator(),
    )
    retained = orchestrator.process_stream(data)
    return orchestrator, data, retained


class TestCollectStatus:
    def test_totals_match_stats(self, run):
        orchestrator, data, retained = run
        status = collect_status(orchestrator, data, retained)
        assert status.total_received == len(data)
        assert status.total_retained == len(retained)
        assert 0.0 < status.retention <= 1.0

    def test_per_vp_rows(self, run):
        orchestrator, data, retained = run
        status = collect_status(orchestrator, data, retained)
        assert len(status.vps) == 10
        assert sum(r.received for r in status.vps) == len(data)
        assert sum(r.retained for r in status.vps) == len(retained)

    def test_anchor_rows_flagged(self, run):
        orchestrator, data, retained = run
        status = collect_status(orchestrator, data, retained)
        anchors = {r.vp for r in status.vps if r.is_anchor}
        assert anchors == set(orchestrator.anchor_vps)
        # Anchors keep everything.
        for row in status.vps:
            if row.is_anchor and row.received:
                assert row.retention == 1.0

    def test_honest_peers_score_one(self, run):
        orchestrator, data, retained = run
        status = collect_status(orchestrator, data, retained)
        assert all(r.honesty >= 0.95 for r in status.vps)

    def test_session_accounting(self, run):
        orchestrator, data, retained = run
        db = PeeringDB({65001: {"good.example"}})
        manager = SessionManager(db)
        manager.submit_form(
            PeeringRequest(65001, "noc@good.example", "r1"))
        vp2 = manager.submit_form(
            PeeringRequest(65001, "x@evil.example", "r2"))
        manager.receive_email(vp2, "x@evil.example", 65001)
        status = collect_status(orchestrator, data, retained,
                                sessions=manager)
        assert status.pending_sessions == 1
        assert status.rejected_sessions == 1


class TestRenderStatus:
    def test_renders_all_sections(self, run):
        orchestrator, data, retained = run
        text = render_status(collect_status(orchestrator, data, retained))
        assert "platform status" in text
        assert "peers: 10 active" in text
        assert "filters:" in text
        assert text.count("\n") >= 15

    def test_empty_platform(self):
        orchestrator = Orchestrator(OrchestratorConfig(
            component1_interval_s=600.0, mirror_window_s=400.0))
        status = collect_status(orchestrator, [], [])
        text = render_status(status)
        assert "peers: 0 active" in text
        assert status.retention == 1.0

    def test_pipeline_metrics_section(self, run):
        from repro.pipeline import PipelineMetrics

        orchestrator, data, retained = run
        metrics = PipelineMetrics()
        metrics.register_session("vp1")
        metrics.session_enqueued("vp1")
        metrics.update_processed(True)
        status = collect_status(orchestrator, data, retained,
                                pipeline=metrics.snapshot())
        text = render_status(status)
        assert "pipeline metrics" in text
        assert "throughput" in text

    def test_no_pipeline_section_by_default(self, run):
        orchestrator, data, retained = run
        status = collect_status(orchestrator, data, retained)
        assert status.pipeline is None
        assert "pipeline metrics" not in render_status(status)
