"""Differential parity: incremental trackers vs their batch twins.

The filter's correctness argument rests on these tests — each
incremental structure in :mod:`repro.gill.incremental` must produce
*exactly* the batch answer when fed the same time-ordered stream.
"""

from collections import Counter

import numpy as np
import pytest

from repro.bgp.rib import annotate_stream
from repro.core.correlation import CorrelationGroups
from repro.core.events import detect_events
from repro.core.redundancy import RedundancyDefinition, update_redundancy
from repro.core.scoring import score_vps, update_volumes
from repro.gill import (
    IncrementalCorrelationGroups,
    IncrementalRedundancyCounter,
    IncrementalVPScorer,
)
from repro.workload.generator import (
    StreamConfig,
    SyntheticStreamGenerator,
    overshoot_config,
)


def _sorted_stream(config):
    generator = SyntheticStreamGenerator(config)
    _, stream = generator.generate()
    stream.sort(key=lambda u: (u.time, u.vp, u.prefix))
    return generator.vps, stream


@pytest.fixture(scope="module")
def mixed():
    """A divergence-heavy stream exercising all three definitions."""
    return _sorted_stream(StreamConfig(
        n_vps=8, n_prefix_groups=8, duration_s=1500.0, seed=5))


@pytest.fixture(scope="module")
def overshoot():
    """The redundant-clusters scenario the filter targets."""
    return _sorted_stream(overshoot_config(seed=2, n_vps=12,
                                           duration_s=900.0))


def _canonical_groups(groups: CorrelationGroups):
    return {
        prefix: Counter((g.members, g.weight) for g in bucket)
        for prefix, bucket in groups._groups.items()
    }


@pytest.mark.parametrize("stream_fixture", ["mixed", "overshoot"])
def test_correlation_groups_parity(stream_fixture, request):
    _, stream = request.getfixturevalue(stream_fixture)
    batch = CorrelationGroups.build(stream)
    tracker = IncrementalCorrelationGroups()
    for update in stream:
        tracker.add(update)
    incremental = tracker.close()
    assert _canonical_groups(incremental) == _canonical_groups(batch)
    assert incremental.total_groups() == batch.total_groups()


def test_total_groups_counts_open_windows(mixed):
    _, stream = mixed
    tracker = IncrementalCorrelationGroups()
    for update in stream:
        tracker.add(update)
    live = tracker.total_groups()
    assert live == tracker.close().total_groups()
    with pytest.raises(ValueError):
        tracker.add(stream[-1])


@pytest.mark.parametrize("definition", list(RedundancyDefinition))
@pytest.mark.parametrize("stream_fixture", ["mixed", "overshoot"])
def test_redundancy_parity(definition, stream_fixture, request):
    _, stream = request.getfixturevalue(stream_fixture)
    annotated = annotate_stream(stream)
    batch = update_redundancy(annotated, definition)
    counter = IncrementalRedundancyCounter(definition)
    for one in annotated:
        counter.add(one)
    report = counter.report()
    assert report.total_updates == batch.total_updates
    assert report.redundant_updates == batch.redundant_updates
    assert report.fraction == batch.fraction


def _event_key(event):
    return (event.kind.value, event.as1, event.as2, event.start,
            event.end, str(event.prefix), tuple(sorted(event.observers)))


@pytest.mark.parametrize("stream_fixture", ["mixed", "overshoot"])
def test_event_and_score_parity(stream_fixture, request):
    vps, stream = request.getfixturevalue(stream_fixture)
    vps = sorted(vps)
    batch_events = detect_events(stream, total_vps=len(vps))
    _, batch_scores = score_vps(stream, batch_events, vps)
    batch_volumes = update_volumes(stream, vps)

    scorer = IncrementalVPScorer(vps)
    for one in annotate_stream(stream):
        scorer.feed(one)
    scorer.close()

    assert Counter(map(_event_key, scorer.events)) \
        == Counter(map(_event_key, batch_events))
    assert scorer.n_events == len(batch_events)
    np.testing.assert_allclose(scorer.scores(), batch_scores,
                               atol=1e-12)
    assert scorer.volumes() == batch_volumes


def test_finalize_until_is_a_prefix_of_close(mixed):
    """Mid-stream finalization decides only ripe clusters, and the
    events it emits are exactly those the full run also emits."""
    vps, stream = mixed
    vps = sorted(vps)
    annotated = annotate_stream(stream)
    cut = len(annotated) // 2
    watermark = annotated[cut].update.time

    scorer = IncrementalVPScorer(vps)
    for one in annotated[:cut]:
        scorer.feed(one)
    scorer.finalize_until(watermark)
    early = Counter(map(_event_key, scorer.events))
    for one in annotated[cut:]:
        scorer.feed(one)
    scorer.close()
    final = Counter(map(_event_key, scorer.events))

    assert early == final & early  # nothing retracted
    batch = Counter(map(_event_key,
                        detect_events(stream, total_vps=len(vps))))
    assert final == batch


def test_scorer_requires_window_beyond_slack():
    with pytest.raises(ValueError):
        IncrementalVPScorer(["vp1", "vp2"], cluster_window_s=50.0,
                            settle_slack_s=100.0)
