"""GillStage semantics: drops, keep-list, determinism, journaling."""

import itertools
import json

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.redundancy import RedundancyDefinition
from repro.gill import GillConfig, GillJournal, GillStage

P1 = Prefix.from_index(1)
P2 = Prefix.from_index(2)
VPS = ("vp1", "vp2", "vp3")


def _upd(vp, t, prefix=P1, path=(1, 2, 3), comms=()):
    return BGPUpdate(vp, t, prefix, path, frozenset(comms))


def _run(stage, updates):
    kept = []
    for update in updates:
        kept.extend(stage.offer(update))
    kept.extend(stage.flush())
    return kept


def test_duplicate_within_slack_is_dropped():
    stage = GillStage(GillConfig(definition=1, auto_anchors=False),
                      VPS, interval_s=300.0)
    kept = _run(stage, [_upd("vp1", 10.0), _upd("vp2", 20.0)])
    assert [u.vp for u in kept] == ["vp1"]
    info = stage.summary()
    assert (info["kept"], info["dropped"]) == (1, 1)


def test_witness_expires_after_slack():
    stage = GillStage(GillConfig(definition=1, slack_s=100.0,
                                 auto_anchors=False),
                      VPS, interval_s=300.0)
    kept = _run(stage, [_upd("vp1", 10.0), _upd("vp2", 115.0)])
    assert [u.vp for u in kept] == ["vp1", "vp2"]


def test_different_prefix_is_never_redundant():
    stage = GillStage(GillConfig(definition=1, auto_anchors=False),
                      VPS, interval_s=300.0)
    kept = _run(stage, [_upd("vp1", 10.0, P1), _upd("vp2", 11.0, P2)])
    assert len(kept) == 2


def test_keep_list_bypasses_the_filter():
    stage = GillStage(GillConfig(definition=1, keep=("vp2",),
                                 auto_anchors=False),
                      VPS, interval_s=300.0)
    kept = _run(stage, [_upd("vp1", 10.0), _upd("vp2", 20.0),
                        _upd("vp3", 30.0)])
    assert [u.vp for u in kept] == ["vp1", "vp2"]
    assert stage.keep_list() == {"vp2"}


def test_definition2_spares_new_links():
    stage = GillStage(GillConfig(definition=2, auto_anchors=False),
                      VPS, interval_s=300.0)
    kept = _run(stage, [_upd("vp1", 10.0, path=(1, 2, 3)),
                        _upd("vp2", 20.0, path=(9, 8, 3)),
                        _upd("vp3", 30.0, path=(1, 2, 3))])
    # vp2's links are not nested in vp1's; vp3's are nested in vp1's.
    assert [u.vp for u in kept] == ["vp1", "vp2"]


def test_equal_time_decisions_are_permutation_invariant():
    batch = [_upd("vp1", 50.0, path=(1, 2, 3)),
             _upd("vp2", 50.0, path=(9, 8, 3)),
             _upd("vp3", 50.0, path=(4, 2, 3))]
    outcomes = set()
    for perm in itertools.permutations(batch):
        stage = GillStage(GillConfig(definition=2, auto_anchors=False),
                          VPS, interval_s=300.0)
        kept = _run(stage, list(perm))
        outcomes.add(tuple(sorted(u.vp for u in kept)))
    assert len(outcomes) == 1


def test_strictest_definition_audit_label():
    stage = GillStage(GillConfig(definition=1, auto_anchors=False),
                      VPS, interval_s=300.0)
    # Exact duplicate -> Definition 3; divergent path -> stays 1.
    _run(stage, [_upd("vp1", 10.0, path=(1, 2, 3)),
                 _upd("vp2", 20.0, path=(1, 2, 3)),
                 _upd("vp3", 30.0, path=(9, 8, 7))])
    record = stage.journal.last()
    assert record["drops"] == {"vp2": {"3": 1}, "vp3": {"1": 1}}
    assert record["definition"] == 1


def test_slot_flush_journals_accounting():
    stage = GillStage(GillConfig(definition=1, auto_anchors=False),
                      VPS, interval_s=100.0)
    _run(stage, [_upd("vp1", 10.0), _upd("vp2", 20.0),
                 _upd("vp1", 150.0, P2), _upd("vp3", 230.0, P2)])
    records = stage.journal.records
    assert [r["watermark"] for r in records] == [100.0, 200.0, 300.0]
    assert [(r["kept"], r["dropped"]) for r in records] \
        == [(1, 1), (1, 0), (0, 1)]
    assert stage.vp_scores().keys() == set(VPS)
    totals = stage.journal.totals()
    assert (totals["kept"], totals["dropped"]) == (2, 2)


def test_journal_load_truncates_beyond_watermark(tmp_path):
    path = tmp_path / "gill.jsonl"
    journal = GillJournal(path)
    journal.append({"watermark": 100.0, "kept": 1, "dropped": 0})
    journal.append({"watermark": 200.0, "kept": 2, "dropped": 1})
    with open(path, "a") as handle:
        handle.write('{"watermark": 300.0, "kept"')  # torn tail
    fresh = GillJournal(path)
    assert fresh.load(truncate_beyond=100.0) == 1
    assert fresh.last_watermark() == 100.0
    # The file was rewritten without the truncated and torn lines.
    lines = [json.loads(line) for line in open(path)]
    assert [r["watermark"] for r in lines] == [100.0]


def test_config_validation():
    assert GillConfig(definition=3).definition \
        is RedundancyDefinition.PREFIX_ASPATH_COMMUNITY
    with pytest.raises(ValueError):
        GillConfig(slack_s=0.0)
    with pytest.raises(ValueError):
        GillConfig(gamma=0.0)
    with pytest.raises(ValueError):
        GillConfig(max_anchors=0)


def test_metrics_families_update():
    stage = GillStage(GillConfig(definition=1, auto_anchors=False),
                      VPS, interval_s=300.0)
    _run(stage, [_upd("vp1", 10.0), _upd("vp2", 20.0)])
    doc = stage.registry.to_json()
    by_name = {f["name"]: f for f in doc["families"]}
    decisions = {s["labels"]["decision"]: s["value"]
                 for s in by_name["repro_gill_decisions_total"]["samples"]}
    assert decisions == {"kept": 1, "dropped": 1}
    dropped = by_name["repro_gill_dropped_total"]["samples"]
    assert [(s["labels"]["vp"], s["labels"]["definition"], s["value"])
            for s in dropped] == [("vp2", "3", 1)]
    assert by_name["repro_gill_rescores_total"]["samples"][0]["value"] == 1
