"""Tests for the sampling schemes of §10."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.redundancy import RedundancyDefinition
from repro.sampling import (
    ASDistanceVPs,
    DefinitionBasedVPs,
    GillScheme,
    GillUpd,
    GillVp,
    RandomUpdates,
    RandomVPs,
    UnbiasedVPs,
    all_usecase_specifics,
    topology_specific,
)
from repro.workload import StreamConfig, SyntheticStreamGenerator


@pytest.fixture(scope="module")
def data():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=14, n_prefix_groups=8, duration_s=1500.0, seed=2))
    warmup, stream = generator.generate()
    return warmup + stream


ALL_SCHEMES = [
    RandomUpdates(seed=1),
    RandomVPs(seed=1),
    ASDistanceVPs(seed=1),
    UnbiasedVPs(seed=1),
    DefinitionBasedVPs(RedundancyDefinition.PREFIX, seed=1),
    DefinitionBasedVPs(RedundancyDefinition.PREFIX_ASPATH, seed=1),
    DefinitionBasedVPs(RedundancyDefinition.PREFIX_ASPATH_COMMUNITY,
                       seed=1),
    GillUpd(seed=1),
    GillVp(seed=1, events_per_cell=5),
] + all_usecase_specifics(seed=1)


class TestBudgetContract:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=lambda s: s.name)
    def test_respects_budget(self, scheme, data):
        budget = len(data) // 10
        sample = scheme.sample(data, budget)
        assert len(sample) <= budget

    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=lambda s: s.name)
    def test_sample_is_subset(self, scheme, data):
        sample = scheme.sample(data, len(data) // 10)
        pool = {id(u) for u in data}
        universe = {(u.vp, u.time, u.prefix, u.as_path) for u in data}
        assert all((u.vp, u.time, u.prefix, u.as_path) in universe
                   for u in sample)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=lambda s: s.name)
    def test_zero_budget(self, scheme, data):
        assert scheme.sample(data, 0) == []

    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=lambda s: s.name)
    def test_negative_budget_rejected(self, scheme, data):
        with pytest.raises(ValueError):
            scheme.sample(data, -1)

    @pytest.mark.parametrize(
        "scheme",
        [RandomUpdates(seed=1), RandomVPs(seed=1), GillUpd(seed=1)],
        ids=lambda s: s.name)
    def test_huge_budget_returns_at_most_everything(self, scheme, data):
        sample = scheme.sample(data, 10 * len(data))
        assert len(sample) <= len(data)


class TestSchemeBehavior:
    def test_random_updates_deterministic(self, data):
        a = RandomUpdates(seed=5).sample(data, 100)
        b = RandomUpdates(seed=5).sample(data, 100)
        assert a == b

    def test_random_vps_selects_whole_vps(self, data):
        budget = len(data) // 3
        sample = RandomVPs(seed=4).sample(data, budget)
        by_vp_total = {}
        for u in data:
            by_vp_total[u.vp] = by_vp_total.get(u.vp, 0) + 1
        by_vp_sample = {}
        for u in sample:
            by_vp_sample[u.vp] = by_vp_sample.get(u.vp, 0) + 1
        # All but at most one VP (the budget-crossing one) are complete.
        partial = [vp for vp, n in by_vp_sample.items()
                   if n < by_vp_total[vp]]
        assert len(partial) <= 1

    def test_as_distance_spreads_vps(self, data):
        sample = ASDistanceVPs(seed=3).sample(data, len(data) // 4)
        assert len({u.vp for u in sample}) >= 2

    def test_def_based_less_redundant_than_random(self, data):
        """The definition-based specific must reduce redundancy under
        its own definition versus random VP selection (§5)."""
        from repro.bgp.rib import annotate_stream
        from repro.core.redundancy import update_redundancy
        budget = len(data) // 4
        definition = RedundancyDefinition.PREFIX
        spec = DefinitionBasedVPs(definition, seed=1).sample(data, budget)
        rnd = RandomVPs(seed=1).sample(data, budget)
        red_spec = update_redundancy(annotate_stream(spec),
                                     definition).fraction
        red_rnd = update_redundancy(annotate_stream(rnd),
                                    definition).fraction
        assert red_spec <= red_rnd + 0.05

    def test_usecase_specific_wins_its_usecase(self, data):
        """Specific-III must observe at least as many links as Rnd-VP
        at equal budget (the Table-2 diagonal logic)."""
        from repro.usecases.topo_mapping import observed_as_links
        budget = len(data) // 6
        spec = topology_specific(seed=1).sample(data, budget)
        rnd = RandomVPs(seed=1).sample(data, budget)
        assert len(observed_as_links(spec)) >= len(observed_as_links(rnd))

    def test_gill_scheme_natural_budget(self, data):
        scheme = GillScheme(seed=1, events_per_cell=5)
        sample = scheme.sample(data)
        assert 0 < len(sample) < len(data)
        assert scheme.last_result is not None

    def test_gill_vp_prefers_anchor_updates(self, data):
        scheme = GillVp(seed=1, events_per_cell=5)
        sample = scheme.sample(data, len(data) // 5)
        assert sample
        # Updates come from few VPs (anchors first).
        assert len({u.vp for u in sample}) <= 14
