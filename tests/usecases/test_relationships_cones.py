"""Tests for AS-relationship inference and customer cones (§12)."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.simulation import (
    Announcement,
    SimulatedInternet,
    propagate,
    synthetic_known_topology,
)
from repro.simulation.policies import Relationship
from repro.usecases.as_relationships import (
    infer_relationships,
    paths_from_updates,
    transit_degrees,
    validate_relationships,
)
from repro.usecases.customer_cone import (
    cone_errors,
    customer_cone_sizes,
    customer_graph,
    mean_absolute_cone_error,
    true_cone_sizes,
)


class TestTransitDegrees:
    def test_middle_as_counted(self):
        degrees = transit_degrees([(1, 2, 3), (4, 2, 5)])
        assert degrees[2] == 4

    def test_edge_as_not_counted(self):
        degrees = transit_degrees([(1, 2, 3)])
        assert 1 not in degrees
        assert 3 not in degrees


class TestInferRelationships:
    def test_ascending_run_oriented(self):
        """Links strictly inside an ascending run are c2p toward the
        path's peak."""
        # Peak is AS 1 (highest transit degree); link (10, 5) sits
        # strictly below it on the way up: 10 is 5's customer.
        paths = [(10, 5, 1, 20), (11, 1, 21), (12, 1, 22), (13, 1, 5)]
        inferred = infer_relationships(paths)
        # Key (5, 10): the higher ASN (10) is the customer of 5.
        assert inferred[(5, 10)] is Relationship.CUSTOMER

    def test_peak_only_link_between_equals_is_peer(self):
        """A link only ever seen joining two comparable peaks is p2p."""
        paths = [(10, 1, 2, 20), (11, 2, 1, 21),
                 (12, 1, 22), (13, 2, 23)]
        inferred = infer_relationships(paths)
        assert inferred[(1, 2)] is Relationship.PEER

    def test_on_simulated_topology_accuracy(self):
        """End-to-end: infer from policy-compliant paths and validate
        against ground truth; c2p inferences should be mostly right
        (the paper reports a 97% TPR for the original algorithm)."""
        topo = synthetic_known_topology(120, seed=3)
        paths = []
        for origin in topo.ases()[::3]:
            routes = propagate(topo, [Announcement.origination(origin)])
            paths.extend(r.path for r in routes.values() if len(r.path) > 1)
        inferred = infer_relationships(paths)
        report = validate_relationships(inferred, topo)
        assert report.validated > 50
        assert report.true_positive_rate > 0.75

    def test_more_paths_more_relationships(self):
        topo = synthetic_known_topology(120, seed=4)
        few_paths = []
        many_paths = []
        for i, origin in enumerate(topo.ases()):
            routes = propagate(topo, [Announcement.origination(origin)])
            all_paths = [r.path for r in routes.values() if len(r.path) > 1]
            many_paths.extend(all_paths)
            if i % 4 == 0:
                few_paths.extend(all_paths[:10])
        few = infer_relationships(few_paths)
        many = infer_relationships(many_paths)
        assert len(many) > len(few)

    def test_empty(self):
        assert infer_relationships([]) == {}


class TestPathsFromUpdates:
    def test_distinct_announcement_paths(self):
        p = Prefix.parse("10.0.0.0/24")
        updates = [
            BGPUpdate("vp1", 0.0, p, (1, 2)),
            BGPUpdate("vp1", 5.0, p, (1, 2)),
            BGPUpdate("vp2", 0.0, p, is_withdrawal=True),
        ]
        assert paths_from_updates(updates) == [(1, 2)]


class TestCustomerCones:
    def test_customer_graph_orientation(self):
        inferred = {(1, 2): Relationship.PROVIDER}   # 1 customer of 2
        graph = customer_graph(inferred)
        assert graph[2] == {1}

    def test_cone_sizes_transitive(self):
        inferred = {
            (1, 3): Relationship.PROVIDER,   # 1 customer of 3
            (2, 3): Relationship.PROVIDER,   # 2 customer of 3
            (3, 4): Relationship.PROVIDER,   # 3 customer of 4
        }
        sizes = customer_cone_sizes(inferred)
        assert sizes[4] == 4
        assert sizes[3] == 3
        assert sizes[1] == 1

    def test_peer_links_do_not_grow_cones(self):
        inferred = {(1, 2): Relationship.PEER}
        sizes = customer_cone_sizes(inferred)
        assert sizes[1] == 1 and sizes[2] == 1

    def test_true_cone_sizes_match_topology(self):
        topo = synthetic_known_topology(60, seed=5)
        truth = true_cone_sizes(topo)
        for asn in topo.ases():
            assert truth[asn] == len(topo.customer_cone(asn))

    def test_cone_errors_and_mae(self):
        inferred = {1: 5, 2: 1}
        truth = {1: 5, 2: 3, 9: 7}
        errors = cone_errors(inferred, truth)
        assert errors == {2: (1, 3)}
        assert mean_absolute_cone_error(inferred, truth) == 1.0

    def test_mae_empty(self):
        assert mean_absolute_cone_error({}, {1: 2}) == 0.0
