"""Tests for failure localization and hijack detection."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.usecases.failure_localization import (
    PathChange,
    candidate_failed_links,
    changes_from_updates,
    localize_failure,
)
from repro.usecases.hijack_detection import (
    DFOHDetector,
    compare_to_reference,
    hijack_visible,
    visible_hijacks,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


class TestFailureLocalization:
    def test_single_observer_pins_single_lost_link(self):
        change = PathChange((1, 2, 9), (1, 3, 2, 9))
        assert candidate_failed_links([change]) == {(1, 2)}

    def test_intersection_narrows_candidates(self):
        # Observer A lost links (1,2) and (2,9); observer B lost (2,9)
        # and (2,5): the common lost link is (2,9).
        changes = [
            PathChange((1, 2, 9), (1, 7, 9)),
            PathChange((5, 2, 9), (5, 8, 9)),
        ]
        assert candidate_failed_links(changes) == {(2, 9)}

    def test_localize_success(self):
        changes = [
            PathChange((1, 2, 9), (1, 7, 9)),
            PathChange((5, 2, 9), (5, 8, 9)),
        ]
        assert localize_failure(changes, (9, 2))
        assert not localize_failure(changes, (1, 2))

    def test_ambiguous_not_localized(self):
        changes = [PathChange((1, 2, 9), (1, 7, 9))]
        assert not localize_failure(changes, (1, 2))   # two candidates

    def test_withdrawal_loses_whole_path(self):
        change = PathChange((1, 2), ())
        assert candidate_failed_links([change]) == {(1, 2)}

    def test_disjoint_observations_empty(self):
        changes = [
            PathChange((1, 2), (1, 3)),
            PathChange((5, 6), (5, 7)),
        ]
        assert candidate_failed_links(changes) == set()

    def test_no_changes(self):
        assert candidate_failed_links([]) == set()

    def test_changes_from_updates(self):
        prior = {("vp1", P1): (1, 2, 9)}
        updates = [
            BGPUpdate("vp1", 10.0, P1, (1, 7, 9)),
            BGPUpdate("vp2", 10.0, P1, (5, 9)),    # no prior: skipped
        ]
        changes = changes_from_updates(prior, updates)
        assert changes == [PathChange((1, 2, 9), (1, 7, 9))]


class TestHijackVisibility:
    def test_visible_when_attacker_on_path(self):
        updates = [BGPUpdate("vp1", 0.0, P1, (5, 7, 6))]
        assert hijack_visible(updates, P1, attacker=7)

    def test_invisible_otherwise(self):
        updates = [BGPUpdate("vp1", 0.0, P1, (5, 2, 6))]
        assert not hijack_visible(updates, P1, attacker=7)

    def test_prefix_must_match(self):
        updates = [BGPUpdate("vp1", 0.0, P2, (5, 7, 6))]
        assert not hijack_visible(updates, P1, attacker=7)

    def test_visible_hijacks_batch(self):
        updates = [
            BGPUpdate("vp1", 0.0, P1, (5, 7, 6)),
            BGPUpdate("vp1", 0.0, P2, (5, 2, 6)),
        ]
        hijacks = [(P1, 7), (P2, 9)]
        assert visible_hijacks(updates, hijacks) == {(P1, 7)}


class TestDFOHDetector:
    @pytest.fixture
    def detector(self):
        detector = DFOHDetector(suspicion_threshold=0.6)
        # A well-connected training graph: a clique core 1-2-3-4 with
        # stubs hanging off it.
        paths = [
            (1, 2, 3), (2, 3, 4), (1, 3, 4), (1, 4, 2),
            (10, 1, 2), (11, 2, 3), (12, 3, 4), (13, 4, 1),
        ]
        detector.train(paths)
        return detector

    def test_known_links_never_flagged(self, detector):
        updates = [BGPUpdate("vp1", 0.0, P1, (1, 2, 3))]
        assert detector.infer(updates) == []

    def test_stranger_link_suspicious(self, detector):
        """A new link between two stubs (no common neighbors) is the
        forged-origin signature."""
        assert detector.link_suspicion(10, 12) > 0.6

    def test_core_link_plausible(self, detector):
        """A new link between two core ASes sharing neighbors is
        plausible (likely a genuinely new peering)."""
        assert detector.link_suspicion(1, 2) < \
            detector.link_suspicion(10, 12)

    def test_infer_reports_new_suspicious_link(self, detector):
        updates = [BGPUpdate("vp1", 0.0, P1, (10, 12, 99))]
        cases = detector.infer(updates)
        assert any(c.link == (10, 12) for c in cases)

    def test_case_reported_once_per_prefix(self, detector):
        updates = [
            BGPUpdate("vp1", 0.0, P1, (10, 12, 99)),
            BGPUpdate("vp2", 1.0, P1, (10, 12, 99)),
            BGPUpdate("vp1", 2.0, P2, (10, 12, 99)),
        ]
        cases = detector.infer(updates)
        same_link = [c for c in cases if c.link == (10, 12)]
        assert len(same_link) == 2   # one per prefix

    def test_train_on_updates(self):
        detector = DFOHDetector()
        detector.train_on_updates([BGPUpdate("vp1", 0.0, P1, (1, 2))])
        assert detector.known_link_count == 1


class TestPerformanceScoring:
    def test_tpr_fpr(self):
        found = {("a",), ("b",)}
        reference = {("a",), ("c",)}
        universe = {("a",), ("b",), ("c",), ("d",)}
        perf = compare_to_reference(found, reference, universe)
        assert perf.true_positives == 1
        assert perf.false_positives == 1
        assert perf.tpr == 0.5
        assert perf.fpr == 0.5

    def test_empty_sets(self):
        perf = compare_to_reference(set(), set(), set())
        assert perf.tpr == 0.0
        assert perf.fpr == 0.0
