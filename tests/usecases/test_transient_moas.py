"""Tests for transient-path (I) and MOAS (II) detection."""

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.usecases.moas import detect_moas, moas_prefixes
from repro.usecases.transient import (
    detect_transient_paths,
    transient_event_ids,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp, t, path, prefix=P1):
    return BGPUpdate(vp, t, prefix, path)


class TestTransientPaths:
    def test_short_lived_route_detected(self):
        stream = [
            upd("vp1", 0.0, (1, 2)),
            upd("vp1", 60.0, (1, 3, 2)),     # replaces after 60s
        ]
        transients = detect_transient_paths(stream)
        assert len(transients) == 1
        assert transients[0].as_path == (1, 2)
        assert transients[0].lifetime == 60.0

    def test_long_lived_route_not_transient(self):
        stream = [
            upd("vp1", 0.0, (1, 2)),
            upd("vp1", 400.0, (1, 3, 2)),
        ]
        assert detect_transient_paths(stream) == []

    def test_withdrawal_ends_route(self):
        stream = [
            upd("vp1", 0.0, (1, 2)),
            BGPUpdate("vp1", 100.0, P1, is_withdrawal=True),
        ]
        transients = detect_transient_paths(stream)
        assert len(transients) == 1

    def test_duplicate_announcement_keeps_birth_time(self):
        """Re-announcing the same path must not reset the clock."""
        stream = [
            upd("vp1", 0.0, (1, 2)),
            upd("vp1", 200.0, (1, 2)),       # duplicate
            upd("vp1", 400.0, (1, 3, 2)),    # change after 400s total
        ]
        assert detect_transient_paths(stream) == []

    def test_final_route_never_transient(self):
        stream = [upd("vp1", 0.0, (1, 2))]
        assert detect_transient_paths(stream) == []

    def test_path_exploration_chain(self):
        """Each exploration step under 5 min is one transient event."""
        stream = [
            upd("vp1", 0.0, (1, 2)),
            upd("vp1", 30.0, (1, 3, 2)),
            upd("vp1", 60.0, (1, 4, 3, 2)),
            upd("vp1", 90.0, (1, 5, 2)),
        ]
        assert len(detect_transient_paths(stream)) == 3

    def test_event_ids_distinct_per_vp(self):
        stream = [
            upd("vp1", 0.0, (1, 2)), upd("vp1", 10.0, (1, 3)),
            upd("vp2", 0.0, (1, 2)), upd("vp2", 10.0, (1, 3)),
        ]
        assert len(transient_event_ids(stream)) == 2


class TestMOAS:
    def test_two_origins_detected(self):
        stream = [upd("vp1", 0.0, (1, 2, 9)), upd("vp2", 10.0, (3, 7))]
        conflicts = detect_moas(stream)
        assert len(conflicts) == 1
        assert conflicts[0].origins == frozenset({9, 7})

    def test_single_origin_clean(self):
        stream = [upd("vp1", 0.0, (1, 9)), upd("vp2", 10.0, (3, 2, 9))]
        assert detect_moas(stream) == []

    def test_per_prefix(self):
        stream = [
            upd("vp1", 0.0, (1, 9), P1),
            upd("vp2", 0.0, (1, 7), P2),
        ]
        assert detect_moas(stream) == []

    def test_same_vp_over_time(self):
        """A single VP seeing an origin change also reveals MOAS."""
        stream = [upd("vp1", 0.0, (1, 9)), upd("vp1", 500.0, (1, 7))]
        assert len(detect_moas(stream)) == 1

    def test_private_asn_filtered(self):
        stream = [upd("vp1", 0.0, (1, 9)), upd("vp2", 0.0, (3, 64512))]
        assert detect_moas(stream) == []
        assert len(detect_moas(stream, filter_false_positives=False)) == 1

    def test_reserved_asn_filtered(self):
        stream = [upd("vp1", 0.0, (1, 9)), upd("vp2", 0.0, (3, 23456))]
        assert detect_moas(stream) == []

    def test_withdrawals_ignored(self):
        stream = [
            upd("vp1", 0.0, (1, 9)),
            BGPUpdate("vp2", 1.0, P1, is_withdrawal=True),
        ]
        assert detect_moas(stream) == []

    def test_moas_prefixes_helper(self):
        stream = [upd("vp1", 0.0, (1, 9)), upd("vp2", 10.0, (3, 7))]
        assert moas_prefixes(stream) == {P1}
