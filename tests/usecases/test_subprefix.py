"""Tests for sub-prefix hijack simulation and detection."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.simulation import (
    ASTopology,
    SimulatedInternet,
    SubPrefixHijack,
)
from repro.usecases.subprefix import (
    SubPrefixDetector,
    detect_subprefix_hijacks,
)

COVER = Prefix.parse("10.0.0.0/16")
SUB = Prefix.parse("10.0.4.0/24")
OTHER = Prefix.parse("192.0.2.0/24")


def upd(vp, t, path, prefix):
    return BGPUpdate(vp, t, prefix, path)


class TestSubPrefixHijackEvent:
    @pytest.fixture
    def net(self):
        topo = ASTopology()
        topo.add_p2p(1, 2)
        topo.add_c2p(4, 1)
        topo.add_c2p(6, 2)
        topo.add_c2p(3, 1)
        net = SimulatedInternet(topo, seed=1)
        net.announce_prefix(COVER, 4)
        net.deploy_vps([2, 3, 6])
        return net

    def test_every_vp_sees_the_more_specific(self, net):
        updates = net.apply_event(
            SubPrefixHijack(6, COVER, SUB, time=100.0))
        assert {u.vp for u in updates} == {"vp2", "vp3", "vp6"}
        assert all(u.prefix == SUB for u in updates)
        assert all(u.origin_as == 6 for u in updates)

    def test_covering_prefix_untouched(self, net):
        net.apply_event(SubPrefixHijack(6, COVER, SUB, time=100.0))
        assert net.origin_of(COVER) == 4
        assert net.origin_of(SUB) == 6

    def test_invalid_containment_rejected(self):
        with pytest.raises(ValueError):
            SubPrefixHijack(6, COVER, OTHER, time=1.0)
        with pytest.raises(ValueError):
            SubPrefixHijack(6, COVER, COVER, time=1.0)

    def test_unannounced_cover_rejected(self, net):
        with pytest.raises(ValueError):
            net.apply_event(SubPrefixHijack(
                6, Prefix.parse("11.0.0.0/16"),
                Prefix.parse("11.0.1.0/24"), time=1.0))


class TestSubPrefixDetector:
    def bootstrap(self):
        return [upd("vp1", 0.0, (1, 4), COVER),
                upd("vp1", 0.0, (1, 9), OTHER)]

    def test_foreign_more_specific_flagged(self):
        alarms = detect_subprefix_hijacks(
            self.bootstrap(), [upd("vp2", 100.0, (2, 6), SUB)])
        assert len(alarms) == 1
        alarm = alarms[0]
        assert alarm.sub_prefix == SUB
        assert alarm.covering_prefix == COVER
        assert alarm.covering_origin == 4
        assert alarm.announced_origin == 6

    def test_same_origin_deaggregation_silent(self):
        alarms = detect_subprefix_hijacks(
            self.bootstrap(), [upd("vp2", 100.0, (2, 4), SUB)])
        assert alarms == []

    def test_unrelated_new_prefix_silent(self):
        new = Prefix.parse("172.16.0.0/24")
        alarms = detect_subprefix_hijacks(
            self.bootstrap(), [upd("vp2", 100.0, (2, 6), new)])
        assert alarms == []

    def test_alarm_deduplicated_across_vps(self):
        alarms = detect_subprefix_hijacks(self.bootstrap(), [
            upd("vp2", 100.0, (2, 6), SUB),
            upd("vp3", 105.0, (3, 6), SUB),
        ])
        assert len(alarms) == 1

    def test_hijacked_prefix_not_learned(self):
        """The hijack must keep alarming, not become 'owned'."""
        detector = SubPrefixDetector()
        detector.learn(self.bootstrap())
        first = detector.scan([upd("vp2", 100.0, (2, 6), SUB)])
        second = detector.scan([upd("vp3", 9000.0, (3, 6), SUB)])
        assert first and second

    def test_most_specific_cover_wins(self):
        mid = Prefix.parse("10.0.0.0/20")
        detector = SubPrefixDetector({COVER: 4, mid: 5})
        alarms = detector.scan([upd("vp1", 1.0, (1, 6), SUB)])
        assert alarms[0].covering_prefix == mid
        assert alarms[0].covering_origin == 5

    def test_authoritative_ownership_mode(self):
        """ARTEMIS mode: seeded ownership, no bootstrap needed."""
        detector = SubPrefixDetector({COVER: 4})
        alarms = detector.scan([upd("vp1", 1.0, (1, 6), SUB)])
        assert len(alarms) == 1

    def test_end_to_end_with_simulator(self):
        topo = ASTopology()
        topo.add_p2p(1, 2)
        topo.add_c2p(4, 1)
        topo.add_c2p(6, 2)
        net = SimulatedInternet(topo, seed=2)
        net.announce_prefix(COVER, 4)
        net.deploy_vps([1, 2])
        bootstrap = net.initial_table_transfer(time=0.0)
        attack = net.apply_event(
            SubPrefixHijack(6, COVER, SUB, time=500.0))
        alarms = detect_subprefix_hijacks(bootstrap, attack)
        assert len(alarms) == 1
        assert alarms[0].announced_origin == 6
