"""Additional tests for the DFOH scan/infer split."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.usecases.hijack_detection import DFOHDetector

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


@pytest.fixture
def detector():
    detector = DFOHDetector(suspicion_threshold=0.6)
    detector.train([
        (1, 2, 3), (2, 3, 4), (1, 3, 4), (1, 4, 2),
        (10, 1, 2), (11, 2, 3), (12, 3, 4), (13, 4, 1),
    ])
    return detector


class TestScan:
    def test_scan_reports_all_new_links(self, detector):
        updates = [
            BGPUpdate("vp1", 0.0, P1, (10, 12, 99)),     # implausible
            BGPUpdate("vp1", 1.0, P2, (1, 2, 3)),        # all known
            BGPUpdate("vp1", 2.0, P2, (10, 11, 2)),      # new 10-11
        ]
        cases = detector.scan(updates)
        links = {c.link for c in cases}
        assert (10, 12) in links
        assert (10, 11) in links
        assert (1, 2) not in links

    def test_infer_is_thresholded_scan(self, detector):
        updates = [
            BGPUpdate("vp1", 0.0, P1, (10, 12, 99)),
            BGPUpdate("vp1", 2.0, P2, (1, 2, 10)),   # 2-10: plausible-ish
        ]
        scan_ids = {c.case_id for c in detector.scan(updates)}
        infer_ids = {c.case_id for c in detector.infer(updates)}
        assert infer_ids <= scan_ids
        for case in detector.infer(updates):
            assert case.score >= detector.suspicion_threshold

    def test_scan_scores_sorted_descending(self, detector):
        updates = [
            BGPUpdate("vp1", 0.0, P1, (10, 12, 99)),
            BGPUpdate("vp1", 1.0, P2, (1, 2, 10)),
        ]
        scores = [c.score for c in detector.scan(updates)]
        assert scores == sorted(scores, reverse=True)

    def test_withdrawals_ignored(self, detector):
        updates = [BGPUpdate("vp1", 0.0, P1, is_withdrawal=True)]
        assert detector.scan(updates) == []

    def test_empty_training_everything_suspicious(self):
        detector = DFOHDetector(suspicion_threshold=0.5)
        cases = detector.scan([BGPUpdate("vp1", 0.0, P1, (1, 2))])
        assert len(cases) == 1
        assert cases[0].score > 0.5
