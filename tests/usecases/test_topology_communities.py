"""Tests for topology mapping (III), action communities (IV), and
unchanged-path updates (V)."""

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.rib import Route
from repro.simulation.topology import ASTopology
from repro.usecases.communities import (
    community_usage,
    detect_action_communities,
    is_action_community,
)
from repro.usecases.topo_mapping import (
    compare_link_sets,
    links_in_path,
    observed_as_links,
    topology_coverage,
)
from repro.usecases.unchanged_path import detect_unchanged_path_updates

P1 = Prefix.parse("10.0.0.0/24")


def upd(vp, t, path, comms=()):
    return BGPUpdate(vp, t, P1, path, frozenset(comms))


class TestTopologyMapping:
    def test_links_in_path_undirected(self):
        assert links_in_path((3, 1, 2)) == {(1, 3), (1, 2)}

    def test_prepending_ignored(self):
        assert links_in_path((1, 1, 2)) == {(1, 2)}

    def test_observed_links_from_updates_and_ribs(self):
        updates = [upd("vp1", 0.0, (1, 2))]
        ribs = [Route(P1, (3, 4))]
        assert observed_as_links(updates, ribs) == {(1, 2), (3, 4)}

    def test_coverage_split_by_type(self):
        topo = ASTopology()
        topo.add_c2p(2, 1)
        topo.add_c2p(3, 1)
        topo.add_p2p(2, 3)
        coverage = topology_coverage({(1, 2), (2, 3)}, topo)
        assert coverage.c2p_observed == 1
        assert coverage.c2p_total == 2
        assert coverage.p2p_observed == 1
        assert coverage.p2p_fraction == 1.0
        assert coverage.c2p_fraction == 0.5

    def test_empty_topology_coverage(self):
        coverage = topology_coverage(set(), ASTopology())
        assert coverage.p2p_fraction == 0.0
        assert coverage.c2p_fraction == 0.0

    def test_compare_link_sets(self):
        a = {(1, 2), (2, 3)}
        b = {(2, 3), (4, 5)}
        assert compare_link_sets(a, b) == (1, 1, 1)


class TestActionCommunities:
    def test_substrate_convention(self):
        assert is_action_community((65000, 950))
        assert not is_action_community((65000, 100))

    def test_detect_by_convention(self):
        updates = [upd("vp1", 0.0, (1, 2), {(9, 950), (9, 10)})]
        assert detect_action_communities(updates) == {(9, 950)}

    def test_detect_with_known_set(self):
        known = {(9, 10)}
        updates = [upd("vp1", 0.0, (1, 2), {(9, 950), (9, 10)})]
        assert detect_action_communities(updates, known) == {(9, 10)}

    def test_community_usage_counts(self):
        updates = [
            upd("vp1", 0.0, (1, 2), {(9, 1)}),
            upd("vp2", 1.0, (3, 2), {(9, 1), (9, 2)}),
        ]
        usage = community_usage(updates)
        assert usage[(9, 1)] == 2
        assert usage[(9, 2)] == 1


class TestUnchangedPath:
    def test_community_only_change_detected(self):
        stream = [
            upd("vp1", 0.0, (1, 2), {(9, 1)}),
            upd("vp1", 50.0, (1, 2), {(9, 2)}),
        ]
        found = detect_unchanged_path_updates(stream)
        assert len(found) == 1
        assert found[0].old_communities == frozenset({(9, 1)})
        assert found[0].new_communities == frozenset({(9, 2)})

    def test_path_change_not_counted(self):
        stream = [
            upd("vp1", 0.0, (1, 2), {(9, 1)}),
            upd("vp1", 50.0, (1, 3, 2), {(9, 2)}),
        ]
        assert detect_unchanged_path_updates(stream) == []

    def test_exact_duplicate_not_counted(self):
        stream = [
            upd("vp1", 0.0, (1, 2), {(9, 1)}),
            upd("vp1", 50.0, (1, 2), {(9, 1)}),
        ]
        assert detect_unchanged_path_updates(stream) == []

    def test_withdrawal_resets_state(self):
        stream = [
            upd("vp1", 0.0, (1, 2), {(9, 1)}),
            BGPUpdate("vp1", 10.0, P1, is_withdrawal=True),
            upd("vp1", 50.0, (1, 2), {(9, 2)}),
        ]
        assert detect_unchanged_path_updates(stream) == []

    def test_per_vp_tracking(self):
        stream = [
            upd("vp1", 0.0, (1, 2), {(9, 1)}),
            upd("vp2", 10.0, (1, 2), {(9, 2)}),
        ]
        assert detect_unchanged_path_updates(stream) == []
