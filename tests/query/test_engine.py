"""Differential and concurrency tests for repro.query.engine.

The contract under test: every :class:`QueryEngine` answer is equal to
the naive scan — decode the whole archive with ``read_range`` and
filter in Python — for randomized archives, with and without
seal-time indexes, compressed and raw.
"""

import math
import random
import threading

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.query import (
    DirectoryCatalog,
    QueryEngine,
    QuerySpec,
    WriterCatalog,
)

PREFIXES = [Prefix.parse(f"10.{i}.0.0/24") for i in range(6)]
VPS = [f"vp{i}" for i in range(4)]
ORIGINS = [65001, 65002, 65003]


def random_updates(rng, n, t0=0.0, span=1000.0):
    """Time-ordered updates with randomized predicates."""
    times = sorted(rng.uniform(t0, t0 + span) for _ in range(n))
    updates = []
    for t in times:
        if rng.random() < 0.15:
            updates.append(BGPUpdate(rng.choice(VPS), t,
                                     rng.choice(PREFIXES),
                                     is_withdrawal=True))
        else:
            updates.append(BGPUpdate(
                rng.choice(VPS), t, rng.choice(PREFIXES),
                (64500, rng.choice(ORIGINS))))
    return updates


def naive(writer, spec):
    """The reference answer: full decode, filter, sort, limit."""
    hits = [u for u in writer.read_range(0.0, math.inf)
            if spec.matches(u)]
    hits.sort(key=lambda u: (u.time, u.vp, u.prefix))
    return hits if spec.limit is None else hits[:spec.limit]


def specs_under_test(rng):
    """A mix of hand-picked and randomized specs."""
    fixed = [
        QuerySpec(),
        QuerySpec(prefix=PREFIXES[0]),
        QuerySpec(vp=VPS[1]),
        QuerySpec(origin=ORIGINS[0]),
        QuerySpec(prefix=PREFIXES[2], vp=VPS[0]),
        QuerySpec(prefix=Prefix.parse("172.16.0.0/12")),   # absent
        QuerySpec(start=200.0, end=600.0),
        QuerySpec(prefix=PREFIXES[1], start=100.0, end=900.0, limit=5),
        QuerySpec(limit=0),
        QuerySpec(origin=ORIGINS[2], vp=VPS[3], limit=3),
    ]
    for _ in range(10):
        start = rng.uniform(0.0, 800.0)
        fixed.append(QuerySpec(
            prefix=rng.choice(PREFIXES + [None]),
            vp=rng.choice(VPS + [None]),
            origin=rng.choice(ORIGINS + [None]),
            start=start,
            end=start + rng.uniform(50.0, 600.0),
            limit=rng.choice([None, 1, 7]),
        ))
    return fixed


@pytest.fixture(params=[
    (True, True), (True, False), (False, True), (False, False)
], ids=["bz2-indexed", "bz2-preindex", "raw-indexed", "raw-preindex"])
def archive(request, tmp_path):
    """A randomized multi-segment archive; ``index=False`` cases model
    archives published before indexing existed."""
    compress, indexed = request.param
    rng = random.Random(42 if indexed else 43)
    writer = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                  compress=compress, index=indexed)
    writer.write_stream(random_updates(rng, 300))
    writer.close()
    assert len(writer.segments) >= 5
    return writer, rng


class TestDifferential:
    def test_engine_equals_naive_scan(self, archive):
        writer, rng = archive
        with QueryEngine(writer) as engine:
            for spec in specs_under_test(rng):
                assert engine.query(spec) == naive(writer, spec), spec

    def test_directory_source_equals_naive_scan(self, archive, tmp_path):
        writer, rng = archive
        with QueryEngine(str(tmp_path)) as engine:
            for spec in specs_under_test(rng):
                assert engine.query(spec) == naive(writer, spec), spec

    def test_lazy_indexing_persists_and_is_used(self, archive, tmp_path):
        writer, _ = archive
        spec = QuerySpec(prefix=PREFIXES[0])
        with QueryEngine(writer) as engine:
            engine.query(spec)
            snap = engine.stats_snapshot()
            # Pre-index archives build lazily; sealed-with-index
            # archives only load.
            assert snap.index_builds + snap.index_loads \
                == len(writer.segments)
        # A second engine finds the persisted indexes: zero rebuilds.
        with QueryEngine(writer) as engine:
            assert engine.query(spec) == naive(writer, spec)
            assert engine.stats_snapshot().index_builds == 0

    def test_no_persist_mode_leaves_directory_untouched(self, tmp_path):
        rng = random.Random(7)
        writer = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                      compress=False)
        writer.write_stream(random_updates(rng, 100))
        writer.close()
        import os
        before = sorted(os.listdir(tmp_path))
        with QueryEngine(writer, persist_indexes=False) as engine:
            spec = QuerySpec(vp=VPS[0])
            assert engine.query(spec) == naive(writer, spec)
        assert sorted(os.listdir(tmp_path)) == before


class TestPruning:
    def test_absent_prefix_prunes_every_segment(self, archive):
        writer, _ = archive
        with QueryEngine(writer) as engine:
            plan = engine.plan(QuerySpec(
                prefix=Prefix.parse("172.16.0.0/12")))
            assert plan.scan == ()
            assert plan.pruned_index == len(writer.segments)

    def test_time_range_prunes_segments(self, archive):
        writer, _ = archive
        first = writer.segments[0]
        with QueryEngine(writer) as engine:
            plan = engine.plan(QuerySpec(start=first.start,
                                         end=first.end))
            assert plan.pruned_time == len(writer.segments) - 1
            assert [p.segment for p in plan.scan] == [first]

    def test_selective_query_decodes_fewer_records(self, archive):
        writer, _ = archive
        with QueryEngine(writer) as engine:
            engine.query(QuerySpec(prefix=PREFIXES[0], vp=VPS[0]))
            snap = engine.stats_snapshot()
            total = sum(s.count for s in writer.segments)
            assert 0 < snap.records_decoded < total


class TestCache:
    def test_repeat_query_hits_cache(self, archive):
        writer, _ = archive
        spec = QuerySpec(prefix=PREFIXES[0])
        with QueryEngine(writer) as engine:
            first = engine.query(spec)
            second = engine.query(spec)
            assert first == second
            snap = engine.stats_snapshot()
            assert snap.queries == 2
            assert snap.cache_hits == 1
            assert snap.cache_hit_rate == 0.5

    def test_cached_result_is_a_private_copy(self, archive):
        writer, _ = archive
        spec = QuerySpec(prefix=PREFIXES[0])
        with QueryEngine(writer) as engine:
            first = engine.query(spec)
            first.clear()
            assert engine.query(spec) == naive(writer, spec)

    def test_watermark_advance_invalidates(self, tmp_path):
        rng = random.Random(3)
        writer = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                      compress=False, index=True)
        writer.write_stream(random_updates(rng, 80, span=500.0))
        spec = QuerySpec(vp=VPS[0])
        with QueryEngine(writer) as engine:
            stale = engine.query(spec)
            token_before = engine.watermark()
            # The live pipeline seals more segments behind the engine.
            writer.write_stream(
                random_updates(rng, 80, t0=600.0, span=500.0))
            writer.close()
            assert engine.watermark() != token_before
            fresh = engine.query(spec)
            assert fresh == naive(writer, spec)
            assert len(fresh) > len(stale)
            snap = engine.stats_snapshot()
            assert snap.cache_hits == 0
            assert snap.cache_invalidations == 1


class TestConcurrency:
    def test_queries_race_with_sealing(self, tmp_path):
        """Readers querying while the writer seals segments must only
        ever observe an answer for some *prefix* of the segment
        sequence — never a torn in-between state."""
        rng = random.Random(11)
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False, index=True)
        updates = random_updates(rng, 400, span=2000.0)
        spec = QuerySpec(prefix=PREFIXES[0])

        # Every acceptable answer: the naive result over the first k
        # sealed segments, for every k.
        shadow = RollingArchiveWriter(str(tmp_path / "shadow"),
                                      interval_s=100.0, compress=False)
        acceptable = {()}
        for update in updates:
            if shadow.write(update) is not None:
                acceptable.add(tuple(naive(shadow, spec)))
        shadow.close()
        acceptable.add(tuple(naive(shadow, spec)))

        failures = []
        stop = threading.Event()

        def reader(engine):
            while not stop.is_set():
                answer = tuple(engine.query(spec))
                if answer not in acceptable:
                    failures.append(answer)
                    return

        with QueryEngine(writer, cache_size=8) as engine:
            threads = [threading.Thread(target=reader, args=(engine,))
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            writer.write_stream(updates)
            writer.close()
            # One final settled read per reader, then stop.
            final = tuple(engine.query(spec))
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures
        assert final == tuple(naive(writer, spec))

    def test_parallel_identical_queries_agree(self, archive):
        writer, rng = archive
        specs = specs_under_test(rng)
        expected = {spec.key(): naive(writer, spec) for spec in specs}
        failures = []

        def worker():
            for spec in sorted(specs, key=lambda s: rng.random()):
                if engine.query(spec) != expected[spec.key()]:
                    failures.append(spec)

        with QueryEngine(writer) as engine:
            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures


class TestAggregates:
    def test_vp_counts_match_naive(self, archive):
        writer, _ = archive
        expected = {}
        for update in writer.read_range(0.0, math.inf):
            expected[update.vp] = expected.get(update.vp, 0) + 1
        with QueryEngine(writer) as engine:
            assert engine.vp_counts() == expected

    def test_rib_dump_selection(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                      compress=False)
        writer.write(BGPUpdate("vp1", 10.0, PREFIXES[0], (1, 2)))
        writer.close()
        assert QueryEngine(writer).rib_dump_at() is None
        p100 = writer.write_rib_dump(100.0, {})
        p500 = writer.write_rib_dump(500.0, {})
        with QueryEngine(writer) as engine:
            assert engine.rib_dump_at() == (500.0, p500)
            assert engine.rib_dump_at(499.0) == (100.0, p100)
            assert engine.rib_dump_at(50.0) is None


class TestSpecValidation:
    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(start=10.0, end=5.0)
        with pytest.raises(ValueError):
            QuerySpec(limit=-1)

    def test_from_params(self):
        spec = QuerySpec.from_params({
            "prefix": "10.0.0.0/24", "vp": "vp1", "origin": "65001",
            "start": "5", "end": "10", "limit": "3"})
        assert spec.prefix == Prefix.parse("10.0.0.0/24")
        assert spec.origin == 65001 and spec.limit == 3
        with pytest.raises(ValueError):
            QuerySpec.from_params({"bogus": "1"})
