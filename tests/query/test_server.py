"""End-to-end tests for the JSON query API (repro.query.server).

The archives under test are produced the way the platform produces
them — by ``run_pipeline_epoch`` on the concurrent runtime — including
one interrupted by an injected writer crash and recovered with
``resume=True``.
"""

import json
import math
import os
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.bgp.archive import INDEX_SUFFIX, RollingArchiveWriter
from repro.bgp.rib import Route
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.pipeline import FaultPlan, InjectedCrash, PipelineConfig, \
    SupervisorConfig
from repro.query import QueryAPIServer, QueryEngine, index_path
from repro.workload import StreamConfig, SyntheticStreamGenerator, \
    split_by_vp

TIMEOUT = 30.0


def orch_config():
    return OrchestratorConfig(
        component1_interval_s=600.0,
        component2_interval_s=2400.0,
        mirror_window_s=600.0,
        events_per_cell=5,
    )


def get_json(url):
    """GET a URL; returns (status, decoded JSON body)."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def stream():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=6, n_prefix_groups=6, duration_s=1200.0, seed=23,
    ))
    _, updates = generator.generate()
    return updates


@pytest.fixture(scope="module")
def epoch_archive(stream, tmp_path_factory):
    """An archive published by one pipeline epoch, with a RIB dump."""
    directory = tmp_path_factory.mktemp("epoch")
    archive = RollingArchiveWriter(str(directory), interval_s=120.0,
                                   compress=False, checkpoint=True,
                                   index=True)
    result = Orchestrator(orch_config()).run_pipeline_epoch(
        split_by_vp(stream),
        PipelineConfig(n_shards=2, overflow_policy="block"),
        archive=archive, timeout=TIMEOUT)
    assert result.metrics.retained > 0
    # Publish a RIB snapshot built from the archived updates.
    ribs = {}
    for update in archive.read_range(0.0, math.inf):
        if not update.is_withdrawal:
            ribs.setdefault(update.vp, []).append(Route(
                update.prefix, update.as_path, update.communities,
                update.time))
    rib_time = archive.segments[-1].end
    archive.write_rib_dump(rib_time, ribs)
    return archive, ribs, rib_time


@pytest.fixture(scope="module")
def server(epoch_archive):
    archive, _, _ = epoch_archive
    engine = QueryEngine(archive)
    with QueryAPIServer(engine) as api:
        yield api
    engine.close()


class TestEndpoints:
    def test_updates_full_scan(self, server, epoch_archive):
        archive, _, _ = epoch_archive
        status, body = get_json(server.url + "/updates")
        assert status == 200
        want = archive.read_range(0.0, math.inf)
        assert body["count"] == len(want)
        assert body["watermark"] == archive.segments[-1].end
        head = body["updates"][0]
        assert head["vp"] == want[0].vp
        assert head["prefix"] == str(want[0].prefix)
        assert head["as_path"] == list(want[0].as_path)

    def test_updates_filtered(self, server, epoch_archive):
        archive, _, _ = epoch_archive
        sample = archive.read_range(0.0, math.inf)[0]
        status, body = get_json(
            server.url + f"/updates?prefix={sample.prefix}"
            f"&vp={sample.vp}&limit=10")
        assert status == 200
        want = archive.read_range(0.0, math.inf, prefix=sample.prefix,
                                  vp=sample.vp)[:10]
        assert body["count"] == len(want)
        assert [u["time"] for u in body["updates"]] \
            == [u.time for u in want]

    def test_updates_bad_param(self, server):
        status, body = get_json(server.url + "/updates?bogus=1")
        assert status == 400 and "error" in body
        status, body = get_json(server.url + "/updates?prefix=nonsense")
        assert status == 400 and "error" in body

    def test_vps(self, server, epoch_archive):
        archive, _, _ = epoch_archive
        status, body = get_json(server.url + "/vps")
        assert status == 200
        counts = {row["vp"]: row["updates"] for row in body["vps"]}
        want = {}
        for update in archive.read_range(0.0, math.inf):
            want[update.vp] = want.get(update.vp, 0) + 1
        assert counts == want

    def test_rib_streams_the_snapshot(self, server, epoch_archive):
        _, ribs, rib_time = epoch_archive
        status, body = get_json(server.url + "/rib")
        assert status == 200
        assert body["time"] == rib_time
        assert body["count"] == sum(len(r) for r in ribs.values())
        vp = sorted(ribs)[0]
        status, body = get_json(server.url + f"/rib?vp={vp}")
        assert status == 200
        assert body["count"] == len(ribs[vp])
        assert all(route["vp"] == vp for route in body["routes"])

    def test_rib_before_first_dump_is_404(self, server):
        status, body = get_json(server.url + "/rib?time=0")
        assert status == 404 and "error" in body

    def test_moas(self, server):
        status, body = get_json(server.url + "/moas")
        assert status == 200
        assert body["count"] == len(body["conflicts"])
        for conflict in body["conflicts"]:
            assert len(conflict["origins"]) >= 2

    def test_hijacks(self, server):
        status, body = get_json(server.url + "/hijacks?threshold=0.5")
        assert status == 200
        assert body["threshold"] == 0.5
        assert body["trained_on"] > 0 and body["scanned"] > 0
        assert body["count"] == len(body["cases"])

    def test_status(self, server, epoch_archive):
        archive, _, _ = epoch_archive
        status, body = get_json(server.url + "/status")
        assert status == 200
        assert body["segments"] == len(archive.segments)
        assert body["watermark"] == archive.segments[-1].end
        assert body["queries"] >= 1

    def test_unknown_endpoint(self, server):
        status, body = get_json(server.url + "/nope")
        assert status == 404 and "error" in body

    def test_metrics_prometheus_text(self, server):
        # Serve some traffic first so the counters are nonzero.
        get_json(server.url + "/updates?limit=1")
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=10) as reply:
            assert reply.status == 200
            assert reply.headers["Content-Type"].startswith(
                "text/plain")
            text = reply.read().decode()
        assert "# TYPE repro_query_requests_total counter" in text
        assert "repro_query_segments_total" in text
        hits = misses = 0
        for line in text.splitlines():
            if line.startswith('repro_query_requests_total{cache="hit"}'):
                hits = float(line.rsplit(" ", 1)[1])
            if line.startswith('repro_query_requests_total{cache="miss"}'):
                misses = float(line.rsplit(" ", 1)[1])
        snapshot = server.engine.stats_snapshot()
        assert hits + misses == snapshot.queries >= 1

    def test_metrics_json(self, server):
        status, body = get_json(server.url + "/metrics?format=json")
        assert status == 200
        names = {family["name"] for family in body["families"]}
        assert "repro_query_requests_total" in names

    def test_metrics_bad_params(self, server):
        status, body = get_json(server.url + "/metrics?format=xml")
        assert status == 400 and "error" in body
        status, body = get_json(server.url + "/metrics?bogus=1")
        assert status == 400 and "error" in body

    def test_metrics_covers_pipeline_when_registry_shared(
            self, epoch_archive):
        """A pipeline-backed engine exposes collection, supervision
        and query families from one scrape (the serve default)."""
        from repro.pipeline import PipelineMetrics

        archive, _, _ = epoch_archive
        metrics = PipelineMetrics()
        engine = QueryEngine(archive, stats=metrics.query)
        with QueryAPIServer(engine) as api:
            get_json(api.url + "/updates?limit=1")
            with urllib.request.urlopen(api.url + "/metrics",
                                        timeout=10) as reply:
                text = reply.read().decode()
        engine.close()
        for family in ("repro_pipeline_stage_updates_total",
                       "repro_session_updates_total",
                       "repro_supervision_events_total",
                       "repro_trace_span_seconds",
                       "repro_query_requests_total"):
            assert f"# TYPE {family}" in text, family


class TestRecoveredArchiveServing:
    """A crash-interrupted epoch, recovered and resumed, must serve
    the same answers as an uninterrupted one — and recovery must not
    leave orphaned index files behind."""

    def test_resume_then_serve(self, stream, tmp_path):
        streams = split_by_vp(stream)

        # Baseline epoch, no faults.
        baseline = RollingArchiveWriter(str(tmp_path / "baseline"),
                                        interval_s=120.0, compress=False,
                                        checkpoint=True, index=True)
        Orchestrator(orch_config()).run_pipeline_epoch(
            streams, PipelineConfig(n_shards=2, overflow_policy="block"),
            archive=baseline, timeout=TIMEOUT)

        # Crash run: the writer dies mid-epoch.
        crash_dir = tmp_path / "crash"
        archive = RollingArchiveWriter(str(crash_dir), interval_s=120.0,
                                       compress=False, checkpoint=True,
                                       index=True)
        with pytest.raises(InjectedCrash):
            Orchestrator(orch_config()).run_pipeline_epoch(
                streams,
                PipelineConfig(
                    n_shards=2, overflow_policy="block",
                    fault_plan=FaultPlan.parse("crash=writer@60"),
                    supervision=SupervisorConfig(
                        backoff_initial_s=0.005, backoff_max_s=0.02,
                        watchdog_interval_s=0.02, stall_timeout_s=0.1)),
                archive=archive, timeout=TIMEOUT)

        # Plant an orphan: an index whose segment is gone.  (A torn
        # segment sealed just before the crash leaves exactly this.)
        orphan = str(crash_dir / ("updates.999999999000-999999999120"
                                  ".mrt" + INDEX_SUFFIX))
        with open(orphan, "w") as handle:
            handle.write("{}")

        recovered = RollingArchiveWriter(str(crash_dir), interval_s=120.0,
                                         compress=False, checkpoint=True,
                                         index=True)
        report = recovered.recover()
        assert os.path.basename(orphan) in report.index_orphans
        assert not os.path.exists(orphan)
        # Every index left on disk belongs to a surviving segment.
        on_disk = {name for name in os.listdir(crash_dir)
                   if name.endswith(INDEX_SUFFIX)}
        valid = {os.path.basename(index_path(s.path))
                 for s in recovered.segments}
        assert on_disk <= valid

        result = Orchestrator(orch_config()).run_pipeline_epoch(
            streams,
            PipelineConfig(n_shards=2, overflow_policy="block"),
            archive=recovered, timeout=TIMEOUT, resume=True)
        assert result.metrics.retained > 0

        # The API over the recovered archive answers exactly like the
        # baseline's.
        with QueryEngine(recovered) as engine, \
                QueryAPIServer(engine) as api:
            status, body = get_json(api.url + "/updates")
            assert status == 200
            want = baseline.read_range(0.0, math.inf)
            assert body["count"] == len(want)
            assert [(u["time"], u["vp"], u["prefix"])
                    for u in body["updates"]] \
                == [(u.time, u.vp, str(u.prefix)) for u in want]
            for path in ("/vps", "/moas", "/hijacks", "/status"):
                status, _ = get_json(api.url + path)
                assert status == 200


def family_samples(registry, name):
    for family in registry.to_json()["families"]:
        if family["name"] == name:
            return family["samples"]
    return []


def sample_total(registry, name, **labels):
    total = 0.0
    for sample in family_samples(registry, name):
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            total += sample["value"]
    return total


class TestHealthProbes:
    def test_healthz_always_ok(self, server):
        status, body = get_json(server.url + "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_readyz_ok_without_guard(self, server, epoch_archive):
        archive, _, _ = epoch_archive
        status, body = get_json(server.url + "/readyz")
        assert status == 200
        assert body["ready"] is True and body["status"] == "ok"
        assert body["quarantined"] == []
        assert body["watermark"] == archive.segments[-1].end

    def test_draining_server_fails_readyz_but_not_healthz(
            self, epoch_archive):
        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        with QueryAPIServer(engine) as api:
            api.drain()
            status, body = get_json(api.url + "/readyz")
            assert status == 503 and body["status"] == "draining"
            assert body["ready"] is False
            # Liveness keeps answering: the process is healthy, it is
            # just refusing new work.
            status, _ = get_json(api.url + "/healthz")
            assert status == 200
            # Data endpoints shed with the draining 503.
            status, body = get_json(api.url + "/updates")
            assert status == 503 and body["error"] == "overloaded"
            assert body["reason"] == "draining"
        engine.close()


class TestSanitizedInternalErrors:
    class BoomEngine:
        """Engine stand-in whose query path always explodes."""

        def __init__(self, registry):
            self.registry = registry

        def query(self, spec, deadline=None, trace=None):
            raise RuntimeError("secret internal detail")

        def watermark(self):
            return None

    def test_500_body_is_opaque(self, epoch_archive):
        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        with QueryAPIServer(engine) as api:
            handler = api.httpd.RequestHandlerClass
            handler.engine = self.BoomEngine(engine.registry)
            try:
                status, body = get_json(api.url + "/updates")
            finally:
                handler.engine = engine
        engine.close()
        assert status == 500
        # The traceback and the exception text stay server-side; the
        # client gets only an opaque request id to quote at an operator.
        assert "secret internal detail" not in json.dumps(body)
        assert "RuntimeError" not in json.dumps(body)
        assert re.fullmatch(r"internal error \(request [0-9a-f]{8}\)",
                            body["error"])

    def test_repeated_500s_open_the_circuit_breaker(self, epoch_archive):
        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        with QueryAPIServer(engine, breaker_threshold=2,
                            breaker_reset_s=60.0) as api:
            handler = api.httpd.RequestHandlerClass
            handler.engine = self.BoomEngine(engine.registry)
            try:
                for _ in range(2):
                    status, _ = get_json(api.url + "/updates")
                    assert status == 500
                status, body = get_json(api.url + "/updates")
                assert status == 503
                assert body["reason"] == "circuit_open"
                assert body["retry_after_s"] >= 1
                # Only /updates tripped; other endpoints still serve.
                handler.engine = engine
                status, _ = get_json(api.url + "/vps")
                assert status == 200
                status, body = get_json(api.url + "/readyz")
                assert status == 200 and body["status"] == "degraded"
                assert body["breakers_open"] == ["/updates"]
            finally:
                handler.engine = engine
        engine.close()


class TestClientAborts:
    def test_mid_response_hangup_is_counted_not_500ed(
            self, epoch_archive):
        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        with QueryAPIServer(engine) as api:
            handler = api.httpd.RequestHandlerClass
            original = handler.engine

            class Hangup:
                registry = engine.registry

                def query(self, spec, deadline=None, trace=None):
                    # What a write to a closed socket raises mid-body.
                    raise BrokenPipeError("client went away")

                def watermark(self):
                    return None

            handler.engine = Hangup()
            try:
                before = sample_total(engine.registry,
                                      "repro_query_client_aborts_total")
                # The client may see an empty reply or a reset —
                # either way the server must not 500 or open a breaker.
                try:
                    urllib.request.urlopen(api.url + "/updates",
                                           timeout=10).read()
                except (urllib.error.HTTPError, urllib.error.URLError,
                        ConnectionError):
                    pass
                after = sample_total(engine.registry,
                                     "repro_query_client_aborts_total")
                assert after == before + 1
                assert api.breaker.open_endpoints() == []
            finally:
                handler.engine = original
            status, _ = get_json(api.url + "/updates?limit=1")
            assert status == 200
        engine.close()


class TestOverloadShedding:
    def test_full_slots_shed_fast_503_with_retry_after(
            self, epoch_archive):
        import threading

        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        entered = threading.Event()
        release = threading.Event()
        real_query = engine.query

        def slow_query(spec, deadline=None, trace=None):
            entered.set()
            release.wait(10.0)
            return real_query(spec, deadline=deadline)

        engine.query = slow_query
        with QueryAPIServer(engine, max_concurrent=1,
                            queue_limit=0) as api:
            outcome = []

            def occupant():
                outcome.append(get_json(api.url + "/updates?limit=1"))

            thread = threading.Thread(target=occupant)
            thread.start()
            assert entered.wait(10.0)
            # The only slot is taken and the queue is disabled: this
            # request must be refused immediately, not queued.
            request = urllib.request.Request(api.url + "/updates")
            try:
                urllib.request.urlopen(request, timeout=10)
                pytest.fail("expected a 503")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
                assert int(exc.headers["Retry-After"]) >= 1
                body = json.loads(exc.read())
                assert body["error"] == "overloaded"
                assert body["reason"] == "queue_full"
            release.set()
            thread.join(10.0)
            assert outcome[0][0] == 200      # the occupant finished
            assert sample_total(engine.registry,
                                "repro_guard_shed_total",
                                reason="queue_full") >= 1
            # Probes bypassed admission the whole time.
            status, _ = get_json(api.url + "/healthz")
            assert status == 200
        engine.query = real_query
        engine.close()

    def test_expired_deadline_sheds_mid_request(self, epoch_archive):
        import time

        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        real_query = engine.query

        def glacial_query(spec, deadline=None, trace=None):
            time.sleep(0.1)
            if deadline is not None:
                deadline.check("mid decode")
            return real_query(spec, deadline=deadline)

        engine.query = glacial_query
        with QueryAPIServer(engine, request_timeout_s=0.02) as api:
            status, body = get_json(api.url + "/updates")
            assert status == 503
            assert body["reason"] == "deadline"
            assert sample_total(engine.registry,
                                "repro_guard_shed_total",
                                reason="deadline") >= 1
        engine.query = real_query
        engine.close()


class TestServerStop:
    def test_stop_closes_the_socket_and_joins(self, epoch_archive):
        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        api = QueryAPIServer(engine).start()
        url = api.url
        status, _ = get_json(url + "/healthz")
        assert status == 200
        api.stop()
        assert api._thread is None
        # The listening socket is gone: nothing can connect any more.
        with pytest.raises((ConnectionError, urllib.error.URLError,
                            OSError)):
            urllib.request.urlopen(url + "/healthz", timeout=2)
        # A second stop is a harmless no-op, not a crash.
        api.stop()
        engine.close()

    def test_double_start_refused(self, epoch_archive):
        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        api = QueryAPIServer(engine).start()
        with pytest.raises(RuntimeError):
            api.start()
        api.stop()
        engine.close()


class TestVPsRanking:
    """/vps with limit/sort and gill value scores (docs/QUERY.md)."""

    @pytest.fixture(scope="class")
    def gill_server(self, epoch_archive):
        from repro.gill import GillJournal

        archive, _, _ = epoch_archive
        vps = sorted({u.vp for u in archive.read_range(0.0, math.inf)})
        journal = GillJournal()
        journal.append({
            "watermark": 1200.0, "kept": 10, "dropped": 5,
            "scores": {
                vp: {"value": round(1.0 - i / 10.0, 3),
                     "redundancy": round(i / 10.0, 3),
                     "volume": 100 + i, "anchor": i == 0}
                for i, vp in enumerate(vps)
            },
        })
        engine = QueryEngine(archive)
        with QueryAPIServer(engine, gill=journal) as api:
            yield api, vps
        engine.close()

    def test_limit_and_sort_updates(self, server):
        status, full = get_json(server.url + "/vps")
        assert status == 200
        status, body = get_json(server.url
                                + "/vps?limit=3&sort=updates")
        assert status == 200
        assert body["count"] == full["count"]
        assert body["returned"] == 3
        counts = [row["updates"] for row in body["vps"]]
        assert counts == sorted(counts, reverse=True)
        want = sorted(full["vps"],
                      key=lambda r: (-r["updates"], r["vp"]))[:3]
        assert [r["vp"] for r in body["vps"]] \
            == [r["vp"] for r in want]

    def test_sort_value_without_gill_is_400(self, server):
        status, body = get_json(server.url + "/vps?sort=value")
        assert status == 400 and "gill" in body["error"]

    def test_bad_params_are_400(self, server):
        for query in ("?limit=0", "?limit=x", "?sort=bogus",
                      "?bogus=1"):
            status, body = get_json(server.url + "/vps" + query)
            assert status == 400 and "error" in body, query

    def test_gill_scores_merge_into_rows(self, gill_server):
        api, vps = gill_server
        status, body = get_json(api.url + "/vps")
        assert status == 200
        rows = {row["vp"]: row for row in body["vps"]}
        assert rows[vps[0]]["value"] == 1.0
        assert rows[vps[0]]["anchor"] is True
        assert rows[vps[1]]["value"] == 0.9
        assert "redundancy" in rows[vps[1]]

    def test_sort_value_ranks_by_score(self, gill_server):
        api, vps = gill_server
        status, body = get_json(api.url + "/vps?sort=value&limit=2")
        assert status == 200
        assert [row["vp"] for row in body["vps"]] == vps[:2]
        values = [row["value"] for row in body["vps"]]
        assert values == sorted(values, reverse=True)


class TestRequestTracing:
    """Per-request tracing: id headers on every response, the
    /debug/traces ring, and inbound trace propagation."""

    @staticmethod
    def _headers(url, trace_id=None):
        request = urllib.request.Request(url)
        if trace_id is not None:
            request.add_header("X-Trace-Id", trace_id)
        try:
            with urllib.request.urlopen(request, timeout=10) as reply:
                return reply.status, dict(reply.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers)

    def test_every_response_carries_ids(self, server):
        # Success, client error, not-found, probe, scrape: all tagged.
        for path in ("/updates?limit=1", "/vps?bogus=1",
                     "/no-such-endpoint", "/healthz", "/readyz",
                     "/metrics", "/status", "/debug/traces"):
            status, headers = self._headers(server.url + path)
            assert headers.get("X-Request-Id"), (path, status)
            assert headers.get("X-Trace-Id"), (path, status)

    def test_request_ids_are_distinct(self, server):
        _, first = self._headers(server.url + "/healthz")
        _, second = self._headers(server.url + "/healthz")
        assert first["X-Request-Id"] != second["X-Request-Id"]

    def test_inbound_trace_id_is_honoured(self, server):
        inbound = "00000000deadbeef"
        _, headers = self._headers(server.url + "/updates?limit=1",
                                   trace_id=inbound)
        assert headers["X-Trace-Id"] == inbound

    def test_debug_traces_show_engine_stages(self, server):
        inbound = "0000feedcafe0001"
        self._headers(server.url + "/updates?origin=65000",
                      trace_id=inbound)
        # Ask for the whole ring: the shared server has answered many
        # requests and ours need not be among the 20 slowest.  The
        # handler thread records the span *after* flushing its
        # response, so poll briefly for it to land in the ring.
        mine = []
        for _ in range(100):
            status, body = get_json(server.url + "/debug/traces?n=500")
            assert status == 200
            mine = [t for t in body["traces"]
                    if t["trace_id"] == inbound]
            if mine:
                break
            time.sleep(0.01)
        assert mine, body["traces"]
        stages = [s["name"] for s in mine[0]["stages"]]
        for stage in ("admission", "cache-lookup", "respond"):
            assert stage in stages, stages
        assert mine[0]["endpoint"] == "/updates"
        assert mine[0]["status"] == 200

    def test_debug_traces_bad_params(self, server):
        status, _ = get_json(server.url + "/debug/traces?n=0")
        assert status == 400
        status, _ = get_json(server.url + "/debug/traces?bogus=1")
        assert status == 400

    def test_shed_carries_request_id(self, epoch_archive):
        archive, _, _ = epoch_archive
        engine = QueryEngine(archive)
        with QueryAPIServer(engine) as api:
            api.drain()
            status, body = get_json(api.url + "/updates")
            assert status == 503
            assert body["reason"] == "draining"
            assert body["request_id"]
        engine.close()
