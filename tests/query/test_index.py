"""Tests for per-segment query indexes (repro.query.index)."""

import os

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.bgp.message import BGPUpdate
from repro.bgp.mrt import decode_record_at, iter_decoded, write_archive
from repro.bgp.prefix import Prefix
from repro.query.index import (
    BloomFilter,
    SegmentIndex,
    build_index,
    ensure_index,
    index_path,
    load_index,
    read_payload,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P3 = Prefix.parse("192.168.0.0/16")


def updates_fixture():
    return [
        BGPUpdate("vp1", 10.0, P1, (65001, 65002)),
        BGPUpdate("vp2", 20.0, P2, (65001, 65003)),
        BGPUpdate("vp1", 30.0, P2, (65001, 65002)),
        BGPUpdate("vp1", 40.0, P1, is_withdrawal=True),
        BGPUpdate("vp3", 50.0, P1, (65004, 65005)),
    ]


@pytest.fixture(params=[True, False], ids=["bz2", "raw"])
def segment(request, tmp_path):
    compressed = request.param
    suffix = ".mrt.bz2" if compressed else ".mrt"
    path = str(tmp_path / f"updates.000000000000-000000000100{suffix}")
    write_archive(updates_fixture(), path, compress=compressed)
    return path, compressed


class TestBloomFilter:
    def test_membership(self):
        bloom = BloomFilter(n_bits=256, n_hashes=3)
        bloom.add("p:10.0.0.0/24")
        assert "p:10.0.0.0/24" in bloom
        assert "p:10.99.0.0/24" not in bloom

    def test_no_false_negatives(self):
        bloom = BloomFilter()
        keys = [f"v:vp{i}" for i in range(200)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_hex_round_trip(self):
        bloom = BloomFilter(n_bits=512, n_hashes=4)
        bloom.add("o:65001")
        again = BloomFilter.from_hex(512, 4, bloom.to_hex())
        assert "o:65001" in again and "o:1" not in again

    def test_invalid_sizing(self):
        with pytest.raises(ValueError):
            BloomFilter(n_bits=0)


class TestBuildIndex:
    def test_counts_and_postings(self, segment):
        path, compressed = segment
        index = build_index(path, compressed)
        assert index.count == 5
        assert sorted(index.prefixes) == sorted({str(P1), str(P2)})
        assert len(index.prefixes[str(P1)]) == 3    # incl. withdrawal
        assert len(index.vps["vp1"]) == 3
        # Withdrawals carry no origin.
        assert len(index.origins["65002"]) == 2
        assert "65005" in index.origins

    def test_offsets_decode_the_right_records(self, segment):
        path, compressed = segment
        index = build_index(path, compressed)
        payload = read_payload(path, compressed)
        for prefix_str, offsets in index.prefixes.items():
            for offset in offsets:
                record = decode_record_at(payload, offset)
                assert str(record.prefix) == prefix_str

    def test_offsets_match_sequential_walk(self, segment):
        path, compressed = segment
        payload = read_payload(path, compressed)
        walked = {offset for offset, _ in iter_decoded(payload)}
        index = build_index(path, compressed)
        indexed = {o for lst in index.prefixes.values() for o in lst}
        assert indexed == walked

    def test_may_match_and_candidates(self, segment):
        path, compressed = segment
        index = build_index(path, compressed)
        assert index.may_match(prefix=P1)
        assert not index.may_match(prefix=P3)
        assert index.may_match(vp="vp2", origin=65003)
        assert not index.may_match(vp="vp2", origin=999999)
        # The most selective postings list is chosen.
        offsets = index.candidate_offsets(prefix=P1, vp="vp3")
        assert len(offsets) == 1
        assert index.candidate_offsets() is None


class TestPersistence:
    def test_save_load_round_trip(self, segment):
        path, compressed = segment
        index = build_index(path, compressed, persist=True)
        assert os.path.exists(index_path(path))
        loaded = load_index(path)
        assert loaded is not None
        assert loaded.count == index.count
        assert loaded.prefixes == index.prefixes
        assert loaded.vps == index.vps
        assert loaded.origins == index.origins
        assert loaded.bloom.bits == index.bloom.bits

    def test_stale_index_rejected(self, segment):
        path, compressed = segment
        build_index(path, compressed, persist=True)
        # Rewrite the segment with different content: the recorded
        # size no longer matches, so the index must not load.
        write_archive(updates_fixture()[:2] * 7, path,
                      compress=compressed)
        assert load_index(path) is None

    def test_corrupt_index_rejected(self, segment):
        path, compressed = segment
        build_index(path, compressed, persist=True)
        with open(index_path(path), "w") as handle:
            handle.write("{not json")
        assert load_index(path) is None

    def test_missing_index(self, segment):
        path, _ = segment
        assert load_index(path) is None

    def test_ensure_builds_then_loads(self, segment):
        path, compressed = segment
        index, built = ensure_index(path, compressed)
        assert built and index.count == 5
        again, built_again = ensure_index(path, compressed)
        assert not built_again
        assert again.count == index.count


class TestSealTimeIndexing:
    def test_writer_persists_index_at_seal(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      index=True)
        for t in (10.0, 150.0, 250.0):
            writer.write(BGPUpdate("vp1", t, P1, (1, 2)))
        writer.close()
        assert len(writer.segments) == 3
        for segment in writer.segments:
            assert os.path.exists(index_path(segment.path))
            loaded = load_index(segment.path)
            assert loaded is not None and loaded.count == segment.count
        assert writer.last_index_build_s is not None

    def test_on_seal_hook_reports_build_time(self, tmp_path):
        events = []
        writer = RollingArchiveWriter(
            str(tmp_path), interval_s=100.0, index=True,
            on_seal=lambda seg, dt: events.append((seg.start, dt)))
        writer.write(BGPUpdate("vp1", 10.0, P1, (1, 2)))
        writer.write(BGPUpdate("vp1", 150.0, P1, (1, 2)))
        writer.close()
        assert [start for start, _ in events] == [0.0, 100.0]
        assert all(dt is not None and dt >= 0.0 for _, dt in events)

    def test_on_seal_without_indexing_passes_none(self, tmp_path):
        events = []
        writer = RollingArchiveWriter(
            str(tmp_path), interval_s=100.0,
            on_seal=lambda seg, dt: events.append(dt))
        writer.write(BGPUpdate("vp1", 10.0, P1, (1, 2)))
        writer.close()
        assert events == [None]
