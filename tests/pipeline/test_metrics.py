"""Tests for the pipeline metrics hub."""

import threading

import pytest

from repro.pipeline.metrics import (
    LatencyHistogram,
    PipelineMetrics,
    render_metrics,
)
from repro.pipeline.queues import BoundedQueue, QueueEmpty


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0

    def test_percentile_brackets_samples(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1e-5)
        hist.record(1.0)
        assert hist.percentile(0.5) < 1e-3
        assert hist.percentile(0.999) >= 1.0

    def test_mean(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        hist.record(3.0)
        assert hist.mean == pytest.approx(2.0)

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_thread_safe_counts(self):
        hist = LatencyHistogram()

        def record():
            for _ in range(1000):
                hist.record(1e-4)

        threads = [threading.Thread(target=record) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 8000


class TestBoundedQueue:
    def test_capacity_enforced(self):
        queue = BoundedQueue(2)
        assert queue.try_put(1) and queue.try_put(2)
        assert not queue.try_put(3)
        assert queue.get() == 1
        assert queue.try_put(3)

    def test_fifo(self):
        queue = BoundedQueue(10)
        for i in range(5):
            queue.put(i)
        assert [queue.get() for _ in range(5)] == list(range(5))

    def test_get_timeout(self):
        queue = BoundedQueue(1)
        with pytest.raises(QueueEmpty):
            queue.get(timeout=0.01)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_gauge_high_water(self):
        queue = BoundedQueue(8)
        for i in range(6):
            queue.put(i)
        for _ in range(6):
            queue.get()
        assert queue.gauge.high_water == 6
        assert queue.gauge.value == 0

    def test_put_blocks_until_space(self):
        queue = BoundedQueue(1)
        queue.put("a")
        done = []

        def producer():
            queue.put("b")
            done.append(True)

        thread = threading.Thread(target=producer)
        thread.start()
        thread.join(0.05)
        assert not done                 # still blocked on the full queue
        assert queue.get(timeout=1.0) == "a"
        thread.join(1.0)
        assert done


class TestPipelineMetrics:
    def test_session_accounting(self):
        metrics = PipelineMetrics()
        metrics.register_session("vp1")
        metrics.register_session("vp2")
        for _ in range(3):
            metrics.session_enqueued("vp1")
        metrics.session_dropped("vp1")
        metrics.session_enqueued("vp2")
        snap = metrics.snapshot()
        assert snap.received == 5
        assert snap.ingest_dropped == 1
        assert snap.loss_fraction == pytest.approx(0.2)
        by_name = {s.session: s for s in snap.sessions}
        assert by_name["vp1"].drop_rate == pytest.approx(0.25)
        assert by_name["vp2"].drop_rate == 0.0

    def test_disposition_counters(self):
        metrics = PipelineMetrics()
        metrics.update_processed(True)
        metrics.update_processed(False)
        metrics.update_processed(False, flagged=True)
        metrics.update_processed(True, forwarded_to=2)
        snap = metrics.snapshot()
        assert snap.retained == 2
        assert snap.discarded == 1
        assert snap.flagged == 1
        assert snap.forwarded == 2
        assert snap.processed == 4

    def test_render_contains_stages(self):
        metrics = PipelineMetrics()
        metrics.register_session("vp1")
        metrics.session_enqueued("vp1")
        metrics.update_processed(True)
        text = render_metrics(metrics.snapshot(), per_session=True)
        assert "pipeline metrics" in text
        assert "ingest" in text and "process" in text and "write" in text
        assert "vp1" in text

    def test_throughput_zero_before_start(self):
        snap = PipelineMetrics().snapshot()
        assert snap.throughput_ups == 0.0
        assert snap.wall_time_s == 0.0
