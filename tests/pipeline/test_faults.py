"""Chaos tests: injected faults, supervision, and crash recovery."""

import math

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.session import SessionManager
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.pipeline import (
    BoundedQueue,
    CollectionPipeline,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    PipelineConfig,
    PipelineMetrics,
    SessionFault,
    SupervisorConfig,
    WriterStage,
)
from repro.pipeline.faults import REORDER_SKEW_S, FaultyStream
from repro.pipeline.stages import Disposition, ShardDone, WatermarkAdvance
from repro.workload import StreamConfig, SyntheticStreamGenerator, \
    split_by_vp

TIMEOUT = 30.0

P1 = Prefix.parse("10.0.0.0/24")


def upd(t, vp="vp1"):
    return BGPUpdate(vp, t, P1, (1, 2))


def fast_supervision(**overrides):
    """Supervision tuned for test wall-clock: quick backoff/watchdog."""
    defaults = dict(backoff_initial_s=0.005, backoff_max_s=0.02,
                    watchdog_interval_s=0.02, stall_timeout_s=0.1)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def assert_accounted(result):
    m = result.metrics
    assert result.accounted, (
        f"lost updates: received={m.received} dropped={m.ingest_dropped} "
        f"flagged={m.flagged} retained={m.retained} "
        f"discarded={m.discarded}"
    )


@pytest.fixture(scope="module")
def synthetic_stream():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=8, n_prefix_groups=8, duration_s=1200.0, seed=11,
    ))
    _, stream = generator.generate()
    return stream


class TestFaultSpec:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(
            "disconnect=vp1@120x3, stall=shard1@50~inf;"
            "io-error=writer@2,malformed=vp2@7")
        assert len(plan.specs) == 4
        assert plan.describe() == ("disconnect=vp1@120x3,"
                                   "stall=shard1@50~inf,"
                                   "io-error=writer@2,malformed=vp2@7")
        assert plan.specs[1].duration_s == math.inf
        assert plan.specs[0].positions() == (120, 240, 360)

    @pytest.mark.parametrize("text", [
        "explode=vp1@5",              # unknown kind
        "disconnect=vp1@0",           # position must be positive
        "stall=vp1@5",                # stalls target shards
        "io-error=vp1@5",             # io-errors target the writer
        "disconnect=vp1",             # missing position
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_seeded_plan_is_deterministic(self):
        kwargs = dict(sessions=["a", "b", "c"], n_shards=4, horizon=200)
        assert FaultPlan.seeded(42, **kwargs) \
            == FaultPlan.seeded(42, **kwargs)
        assert FaultPlan.seeded(42, **kwargs) \
            != FaultPlan.seeded(43, **kwargs)

    def test_selectors(self):
        plan = FaultPlan.parse(
            "disconnect=a@1,malformed=a@2,stall=shard0@3~1,"
            "io-error=writer@4,crash=writer@5")
        assert {s.kind for s in plan.for_session("a")} \
            == {"disconnect", "malformed"}
        assert len(plan.for_shard(0)) == 1
        assert plan.for_shard(1) == ()
        assert {s.kind for s in plan.for_writer()} \
            == {"io-error", "crash"}


class TestCorruptionFaults:
    """The disk-rot kinds: bitflip / truncate / torn-index / slow-read."""

    def test_parse_corruption_kinds(self):
        plan = FaultPlan.parse(
            "bitflip=archive@2,truncate=archive@4,"
            "torn-index=archive@1,slow-read=reader@3~0.2")
        assert len(plan.specs) == 4
        assert {s.kind for s in plan.for_archive()} \
            == {"bitflip", "truncate", "torn-index"}
        assert plan.for_reader()[0].duration_s == 0.2
        # Corruption kinds never reach the session/writer selectors.
        assert plan.for_writer() == ()
        assert plan.for_session("archive") == ()

    @pytest.mark.parametrize("text", [
        "bitflip=writer@1",           # corruption targets the archive
        "truncate=vp1@1",
        "torn-index=reader@1",
        "slow-read=archive@1~0.1",    # slow-read targets the reader
        "slow-read=writer@1",
    ])
    def test_bad_targets_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_seeded_plan_can_include_corruptions(self):
        kwargs = dict(sessions=["a", "b"], n_shards=2, horizon=200,
                      corruptions=2, slow_reads=1)
        plan = FaultPlan.seeded(7, **kwargs)
        assert plan == FaultPlan.seeded(7, **kwargs)
        assert len(plan.for_archive()) == 2
        assert len(plan.for_reader()) == 1
        assert all(s.target == "archive" for s in plan.for_archive())
        assert all(s.duration_s > 0 for s in plan.for_reader())

    def test_corrupt_bitflip_preserves_length(self, tmp_path):
        from repro.pipeline.faults import corrupt_bitflip

        path = tmp_path / "segment"
        payload = bytes(range(256)) * 4
        path.write_bytes(payload)
        corrupt_bitflip(str(path))
        after = path.read_bytes()
        assert len(after) == len(payload)
        flipped = [i for i, (a, b) in enumerate(zip(payload, after))
                   if a != b]
        assert flipped == [len(payload) // 2]
        assert after[flipped[0]] == payload[flipped[0]] ^ 0xFF

    def test_corrupt_truncate_keeps_a_fraction(self, tmp_path):
        from repro.pipeline.faults import TRUNCATE_KEEP_FRACTION, \
            corrupt_truncate

        path = tmp_path / "segment"
        path.write_bytes(b"x" * 1000)
        corrupt_truncate(str(path))
        assert path.stat().st_size \
            == int(1000 * TRUNCATE_KEEP_FRACTION)

    def test_corrupt_torn_index_tears_the_sidecar_only(self, tmp_path):
        from repro.pipeline.faults import corrupt_torn_index

        segment = tmp_path / "segment"
        segment.write_bytes(b"data" * 100)
        sidecar = tmp_path / "segment.idx"
        sidecar.write_text('{"postings": {"a": [1, 2]}}')
        full = sidecar.stat().st_size
        corrupt_torn_index(str(segment))
        assert segment.read_bytes() == b"data" * 100   # data untouched
        assert sidecar.stat().st_size == full // 2
        # Without a sidecar, a torn stub appears (still invalid JSON).
        lone = tmp_path / "lone"
        lone.write_bytes(b"data")
        corrupt_torn_index(str(lone))
        assert (tmp_path / "lone.idx").read_bytes() == b'{"torn":'

    def test_apply_archive_corruption_maps_positions(self, tmp_path):
        from repro.pipeline.faults import FaultInjector

        class Segment:
            def __init__(self, path):
                self.path = path

        segments = []
        for index in range(3):
            path = tmp_path / f"seg{index}"
            path.write_bytes(b"y" * 100)
            segments.append(Segment(str(path)))
        injector = FaultInjector(FaultPlan.parse(
            "bitflip=archive@1,truncate=archive@3"))
        applied = injector.apply_archive_corruption(segments)
        assert applied == [("bitflip", segments[0].path),
                           ("truncate", segments[2].path)]
        assert len(injector.log) == 2
        # The schedule is consumed: a second call corrupts nothing.
        assert injector.apply_archive_corruption(segments) == []

    def test_on_payload_read_sleeps_at_position(self):
        import time
        from repro.pipeline.faults import FaultInjector

        injector = FaultInjector(FaultPlan.parse(
            "slow-read=reader@2~0.05"))
        before = time.monotonic()
        injector.on_payload_read("/seg/a")          # read 1: fast
        fast = time.monotonic() - before
        before = time.monotonic()
        injector.on_payload_read("/seg/b")          # read 2: slow
        slow = time.monotonic() - before
        assert fast < 0.04
        assert slow >= 0.05
        assert any("slow-read at read 2" in line
                   for line in injector.log)


class TestFaultyStream:
    def test_resumes_after_disconnect(self):
        updates = [upd(float(t)) for t in range(10)]
        stream = FaultyStream(
            "vp1", updates, [FaultSpec("disconnect", "vp1", at=3, count=2)])
        seen = []
        faults = 0
        while True:
            try:
                seen.append(next(stream))
            except SessionFault:
                faults += 1
            except StopIteration:
                break
        assert faults == 2
        # Every update survives the flaps: the iterator resumed.
        assert [u.time for u in seen] == [float(t) for t in range(10)]

    def test_malformed_and_reorder_stamping(self):
        updates = [upd(1000.0 + t) for t in range(5)]
        stream = FaultyStream("vp1", updates, [
            FaultSpec("malformed", "vp1", at=2),
            FaultSpec("reorder", "vp1", at=4),
        ])
        out = list(stream)
        assert math.isnan(out[1].time)
        assert out[3].time == pytest.approx(1002.0 - REORDER_SKEW_S)
        assert out[4].time == 1004.0         # stream continues clean


class TestSessionSupervision:
    def test_flap_mid_stream_loses_nothing(self, synthetic_stream):
        streams = split_by_vp(synthetic_stream)
        victim = sorted(streams)[0]
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block",
            fault_plan=FaultPlan.parse(f"disconnect={victim}@5x3"),
            supervision=fast_supervision(),
        ))
        result = pipeline.run(streams, timeout=TIMEOUT)
        assert_accounted(result)
        assert result.metrics.received == len(synthetic_stream)
        sup = result.metrics.supervision
        assert sup.session_restarts == 3
        assert sup.quarantined == ()
        per_session = {s.session: s for s in result.metrics.sessions}
        assert per_session[victim].restarts == 3

    def test_flap_circuit_breaker_quarantines(self, synthetic_stream):
        streams = split_by_vp(synthetic_stream)
        victim = sorted(streams)[0]
        others = sum(len(list(s)) for name, s in
                     split_by_vp(synthetic_stream).items()
                     if name != victim)
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block",
            fault_plan=FaultPlan.parse(f"disconnect={victim}@5x100"),
            supervision=fast_supervision(quarantine_after=3),
        ))
        result = pipeline.run(streams, timeout=TIMEOUT)
        assert_accounted(result)
        sup = result.metrics.supervision
        assert sup.quarantined == (victim,)
        # The quarantined session delivered a prefix of its stream;
        # every other session delivered everything.
        assert result.metrics.received >= others
        assert result.metrics.received < len(synthetic_stream)

    def test_malformed_updates_skipped_and_counted(self, synthetic_stream):
        streams = split_by_vp(synthetic_stream)
        victim = sorted(streams)[0]
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block",
            fault_plan=FaultPlan.parse(
                f"malformed={victim}@3,reorder={victim}@8"),
            supervision=fast_supervision(),
        ))
        mirrored = []
        pipeline.mirror = lambda u, retained: mirrored.append(u)
        result = pipeline.run(streams, timeout=TIMEOUT)
        assert_accounted(result)
        assert result.metrics.supervision.malformed == 2
        assert result.metrics.received == len(synthetic_stream) - 2
        # The corrupt stamps never reached the writer.
        assert all(a.time <= b.time
                   for a, b in zip(mirrored, mirrored[1:]))

    def test_degrades_to_drop_under_sustained_stall(self):
        updates = [upd(float(t), "vp1") for t in range(200)]
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=1, overflow_policy="block",
            ingest_queue_capacity=2, heartbeat_every=1000,
            fault_plan=FaultPlan.parse("stall=shard0@2~0.4"),
            supervision=fast_supervision(
                degrade_after_s=0.05, stall_timeout_s=10.0),
        ))
        result = pipeline.run({"vp1": updates}, timeout=TIMEOUT)
        assert_accounted(result)
        sup = result.metrics.supervision
        assert sup.degraded_episodes >= 1
        assert result.metrics.ingest_dropped > 0   # drop-mode losses


class TestShardWatchdog:
    def test_stuck_shard_released_by_watchdog(self, synthetic_stream):
        streams = split_by_vp(synthetic_stream)
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block",
            fault_plan=FaultPlan.parse("stall=shard0@10~inf"),
            supervision=fast_supervision(),
        ))
        mirrored = []
        pipeline.mirror = lambda u, retained: mirrored.append(u)
        result = pipeline.run(streams, timeout=TIMEOUT)
        assert_accounted(result)
        sup = result.metrics.supervision
        assert sup.worker_restarts == 1
        assert sup.order_violations == 0
        # Nothing lost, nothing duplicated, order preserved: the
        # in-flight envelope moved to the replacement exactly once.
        assert result.metrics.received == len(synthetic_stream)
        assert len(mirrored) == len(synthetic_stream)
        assert all(a.time <= b.time
                   for a, b in zip(mirrored, mirrored[1:]))

    def test_transient_stall_needs_no_restart(self, synthetic_stream):
        streams = split_by_vp(synthetic_stream)
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block",
            fault_plan=FaultPlan.parse("stall=shard1@10~0.05"),
            supervision=fast_supervision(stall_timeout_s=5.0),
        ))
        result = pipeline.run(streams, timeout=TIMEOUT)
        assert_accounted(result)
        assert result.metrics.supervision.worker_restarts == 0
        assert result.metrics.received == len(synthetic_stream)


class TestWriterRecovery:
    def test_io_error_recovers_from_checkpoint(self, synthetic_stream,
                                               tmp_path):
        archive = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                       compress=False, checkpoint=True)
        pipeline = CollectionPipeline(
            PipelineConfig(
                n_shards=2, overflow_policy="block",
                fault_plan=FaultPlan.parse("io-error=writer@40"),
                supervision=fast_supervision(),
            ),
            archive=archive,
        )
        result = pipeline.run(split_by_vp(synthetic_stream),
                              timeout=TIMEOUT)
        assert_accounted(result)
        sup = result.metrics.supervision
        assert sup.writer_io_errors == 1
        assert sup.archive_recoveries == 1
        # The archive stayed internally consistent: a fresh recovery
        # pass finds no torn segments, and every surviving segment
        # replays in time order.
        check = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                     compress=False, checkpoint=True)
        report = check.recover()
        assert report.torn_removed == ()
        replayed = check.read_range(0.0, 1e12)
        assert all(a.time <= b.time
                   for a, b in zip(replayed, replayed[1:]))
        assert len(replayed) == result.metrics.retained \
            - sup.archive_lost

    def test_recovery_budget_exhaustion_is_fatal(self, synthetic_stream,
                                                 tmp_path):
        archive = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                       compress=False, checkpoint=True)
        pipeline = CollectionPipeline(
            PipelineConfig(
                n_shards=2, overflow_policy="block",
                fault_plan=FaultPlan.parse("io-error=writer@10x20"),
                supervision=fast_supervision(max_archive_recoveries=2),
            ),
            archive=archive,
        )
        with pytest.raises(OSError):
            pipeline.run(split_by_vp(synthetic_stream), timeout=TIMEOUT)

    def test_writer_crash_does_not_deadlock_producers(
            self, synthetic_stream, tmp_path):
        """The queues are poisoned on writer death, so blocked
        sessions raise instead of hanging (the satellite deadlock)."""
        archive = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                       compress=False, checkpoint=True)
        pipeline = CollectionPipeline(
            PipelineConfig(
                n_shards=2, overflow_policy="block",
                ingest_queue_capacity=8,
                fault_plan=FaultPlan.parse("crash=writer@30"),
                supervision=fast_supervision(),
            ),
            archive=archive,
        )
        with pytest.raises(InjectedCrash):
            pipeline.run(split_by_vp(synthetic_stream), timeout=TIMEOUT)


class TestCrashResumeRoundTrip:
    def config(self):
        return OrchestratorConfig(
            component1_interval_s=600.0,
            component2_interval_s=2400.0,
            mirror_window_s=600.0,
            events_per_cell=5,
        )

    def sessions_for(self, streams):
        manager = SessionManager()
        for index, vp in enumerate(sorted(streams)):
            manager.activate_directly(vp, 65000 + index)
        return manager

    def test_crash_then_resume_completes_epoch(self, synthetic_stream,
                                               tmp_path):
        streams = split_by_vp(synthetic_stream)

        # Baseline: the same epoch with no faults.
        baseline_dir = tmp_path / "baseline"
        baseline = RollingArchiveWriter(str(baseline_dir),
                                        interval_s=120.0,
                                        compress=False, checkpoint=True)
        Orchestrator(self.config()).run_pipeline_epoch(
            streams, PipelineConfig(n_shards=2, overflow_policy="block"),
            archive=baseline, timeout=TIMEOUT)

        # Crash run: the writer dies mid-epoch.
        crash_dir = tmp_path / "crash"
        archive = RollingArchiveWriter(str(crash_dir), interval_s=120.0,
                                       compress=False, checkpoint=True)
        crashed = Orchestrator(self.config())
        with pytest.raises(InjectedCrash):
            crashed.run_pipeline_epoch(
                streams,
                PipelineConfig(
                    n_shards=2, overflow_policy="block",
                    fault_plan=FaultPlan.parse("crash=writer@60"),
                    supervision=fast_supervision(),
                ),
                archive=archive, timeout=TIMEOUT)

        # A dirty orchestrator must not resume (its mirror is stale).
        recovered_archive = RollingArchiveWriter(
            str(crash_dir), interval_s=120.0,
            compress=False, checkpoint=True)
        with pytest.raises(RuntimeError):
            crashed.run_pipeline_epoch(
                streams, archive=recovered_archive, resume=True)

        # Resume on a fresh orchestrator from the checkpoint.
        sessions = self.sessions_for(streams)
        resumed = Orchestrator(self.config())
        result = resumed.run_pipeline_epoch(
            streams,
            PipelineConfig(n_shards=2, overflow_policy="block",
                           supervision=fast_supervision()),
            archive=recovered_archive, timeout=TIMEOUT,
            sessions=sessions, resume=True)
        assert_accounted(result)
        assert resumed.stats.epoch_resumes == 1
        # §8: every resumed session re-dumped its RIB.
        assert resumed.stats.rib_redumps == len(streams)
        assert all(len(s.rib_dumps) >= 1
                   for s in sessions.sessions.values())

        # The recovered archive holds exactly what the uninterrupted
        # epoch would have published: no torn segments, no gaps.
        want = baseline.read_range(0.0, 1e12)
        got = recovered_archive.read_range(0.0, 1e12)
        assert [(u.time, u.vp, u.prefix) for u in got] \
            == [(u.time, u.vp, u.prefix) for u in want]

    def test_resume_requires_checkpointed_archive(self, synthetic_stream,
                                                  tmp_path):
        archive = RollingArchiveWriter(str(tmp_path), interval_s=120.0,
                                       compress=False)   # no checkpoint
        with pytest.raises(ValueError):
            Orchestrator(self.config()).run_pipeline_epoch(
                split_by_vp(synthetic_stream), archive=archive,
                resume=True)


class TestWriterReorderRegressions:
    """Satellite: duplicate timestamps and late heartbeats must not
    produce out-of-order emissions or wedge the reorder buffer."""

    def drive(self, items, n_shards=2, sessions=("s1", "s2")):
        queue = BoundedQueue(1024)
        metrics = PipelineMetrics()
        for session in sessions:
            metrics.register_session(session)
        mirrored = []
        writer = WriterStage(queue, n_shards, list(sessions),
                             metrics=metrics,
                             mirror=lambda u, r: mirrored.append(u))
        writer.start()
        for item in items:
            queue.put(item)
        writer.join(timeout=10.0)
        assert not writer.is_alive()
        assert writer.error is None
        return mirrored, metrics.snapshot()

    def disp(self, t, vp="s1"):
        return Disposition(upd(t, vp), True, vp, 0.0)

    def test_duplicate_timestamps_all_emitted(self):
        items = [self.disp(100.0, "s1"), self.disp(100.0, "s2"),
                 self.disp(100.0, "s1")]
        for shard in range(2):
            for session in ("s1", "s2"):
                items.append(WatermarkAdvance(shard, session, 100.0))
        items += [ShardDone(), ShardDone()]
        mirrored, snapshot = self.drive(items)
        assert len(mirrored) == 3
        assert [u.time for u in mirrored] == [100.0] * 3
        assert snapshot.supervision.order_violations == 0

    def test_late_heartbeat_does_not_rewind_watermark(self):
        items = []
        for shard in range(2):
            for session in ("s1", "s2"):
                items.append(WatermarkAdvance(shard, session, 200.0))
        items.append(self.disp(150.0, "s1"))
        # A duplicate delivery of an OLD heartbeat arrives late: the
        # watermark must stay at 200 so the t=150 update still emits.
        items.append(WatermarkAdvance(0, "s1", 50.0))
        items.append(self.disp(180.0, "s2"))
        items += [ShardDone(), ShardDone()]
        mirrored, snapshot = self.drive(items)
        assert [u.time for u in mirrored] == [150.0, 180.0]
        assert snapshot.supervision.order_violations == 0

    def test_heap_flushes_once_all_shards_done(self):
        # No END_OF_STREAM markers at all: once both ShardDones are
        # in, the buffered updates must still come out, in order.
        items = [self.disp(300.0, "s1"), self.disp(250.0, "s2"),
                 ShardDone(), ShardDone()]
        mirrored, _ = self.drive(items)
        assert [u.time for u in mirrored] == [250.0, 300.0]


class TestGillFilteringChaos:
    """Crash/resume with the online redundancy filter in the loop.

    The gill design's central claim (docs/GILL.md): filtering commutes
    with crash recovery.  A filtered run that crashes and resumes must
    publish the *byte-identical* archive and drop journal as the same
    run uninterrupted.
    """

    def gill_config(self):
        from repro.gill import GillConfig
        return GillConfig(definition=1)

    def run_epoch(self, streams, archive, fault=None, resume=False):
        config = OrchestratorConfig(
            component1_interval_s=600.0, component2_interval_s=2400.0,
            mirror_window_s=600.0, events_per_cell=5)
        plan = FaultPlan.parse(fault) if fault else None
        return Orchestrator(config).run_pipeline_epoch(
            streams,
            PipelineConfig(n_shards=2, overflow_policy="block",
                           fault_plan=plan,
                           supervision=fast_supervision(),
                           gill=self.gill_config()),
            archive=archive, timeout=TIMEOUT, resume=resume)

    @staticmethod
    def archive_bytes(directory):
        out = {}
        for path in sorted(directory.iterdir()):
            if path.name.startswith("updates.") \
                    or path.name == "gill.jsonl":
                out[path.name] = path.read_bytes()
        return out

    def test_crash_resume_is_byte_identical(self, synthetic_stream,
                                            tmp_path):
        streams = split_by_vp(synthetic_stream)

        baseline_dir = tmp_path / "baseline"
        baseline = RollingArchiveWriter(str(baseline_dir),
                                        interval_s=120.0,
                                        compress=False, checkpoint=True)
        result = self.run_epoch(streams, baseline)
        assert_accounted(result)
        want = self.archive_bytes(baseline_dir)
        assert any(name == "gill.jsonl" for name in want)
        assert sum(len(b) for b in want.values()) > 0

        crash_dir = tmp_path / "crash"
        archive = RollingArchiveWriter(str(crash_dir), interval_s=120.0,
                                       compress=False, checkpoint=True)
        with pytest.raises(InjectedCrash):
            self.run_epoch(streams, archive, fault="crash=writer@60")

        recovered = RollingArchiveWriter(str(crash_dir),
                                         interval_s=120.0,
                                         compress=False, checkpoint=True)
        result = self.run_epoch(streams, recovered, resume=True)
        assert_accounted(result)
        assert self.archive_bytes(crash_dir) == want

    def test_two_runs_are_byte_identical(self, synthetic_stream,
                                         tmp_path):
        streams = split_by_vp(synthetic_stream)
        outputs = []
        for name in ("one", "two"):
            directory = tmp_path / name
            archive = RollingArchiveWriter(str(directory),
                                           interval_s=120.0,
                                           compress=False,
                                           checkpoint=True)
            assert_accounted(self.run_epoch(streams, archive))
            outputs.append(self.archive_bytes(directory))
        assert outputs[0] == outputs[1]

    def test_gill_requires_archive(self, synthetic_stream):
        with pytest.raises(ValueError, match="archive"):
            CollectionPipeline(
                PipelineConfig(n_shards=2, gill=self.gill_config())
            ).run(split_by_vp(synthetic_stream), timeout=TIMEOUT)
