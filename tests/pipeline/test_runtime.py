"""Tests for the concurrent collection runtime."""

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.bgp.filtering import DropRule, FilterTable
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.validation import RouteValidator
from repro.core.forwarding import ForwardingRule, ForwardingService
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.pipeline import (
    CollectionPipeline,
    PipelineConfig,
    ServiceCostModel,
    shard_for,
)
from repro.workload import (
    StreamConfig,
    SyntheticStreamGenerator,
    poisson_session_streams,
    split_by_vp,
)

TIMEOUT = 30.0


@pytest.fixture(scope="module")
def synthetic_stream():
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=16, n_prefix_groups=12, duration_s=1800.0, seed=5,
    ))
    _, stream = generator.generate()
    return stream


def assert_accounted(result):
    m = result.metrics
    assert result.accounted, (
        f"lost updates: received={m.received} dropped={m.ingest_dropped} "
        f"flagged={m.flagged} retained={m.retained} "
        f"discarded={m.discarded}"
    )


class TestConfig:
    def test_defaults_valid(self):
        PipelineConfig()

    @pytest.mark.parametrize("kwargs", [
        dict(n_shards=0),
        dict(shard_by="asn"),
        dict(overflow_policy="spill"),
        dict(time_scale=0.0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)

    def test_shard_for_stable_and_bounded(self):
        update = BGPUpdate("vp1", 0.0, Prefix.parse("10.0.0.0/24"), (1, 2))
        assert shard_for(update, 4, "vp") == shard_for(update, 4, "vp")
        for key in ("vp", "prefix"):
            assert 0 <= shard_for(update, 3, key) < 3
        with pytest.raises(ValueError):
            shard_for(update, 4, "asn")


class TestLosslessRun:
    def test_block_policy_loses_nothing(self, synthetic_stream):
        pipeline = CollectionPipeline(
            PipelineConfig(n_shards=4, overflow_policy="block"))
        result = pipeline.run(split_by_vp(synthetic_stream),
                              timeout=TIMEOUT)
        assert_accounted(result)
        assert result.metrics.ingest_dropped == 0
        assert result.metrics.received == len(synthetic_stream)
        assert result.metrics.retained == len(synthetic_stream)

    def test_filter_decisions_match_sequential(self, synthetic_stream):
        """Concurrent filtering retains exactly what FilterTable would."""
        rules = [
            DropRule(u.vp, u.prefix)
            for u in synthetic_stream[: len(synthetic_stream) // 3]
        ]
        filters = FilterTable(anchor_vps=["vp10000"], drop_rules=rules)
        expected_retained, expected_discarded = \
            filters.apply(synthetic_stream)

        pipeline = CollectionPipeline(
            PipelineConfig(n_shards=4, overflow_policy="block"),
            filters=filters)
        result = pipeline.run(split_by_vp(synthetic_stream),
                              timeout=TIMEOUT)
        assert_accounted(result)
        assert result.metrics.retained == len(expected_retained)
        assert result.metrics.discarded == len(expected_discarded)

    @pytest.mark.parametrize("shard_by", ["vp", "prefix"])
    def test_archive_written_in_time_order(self, synthetic_stream,
                                           tmp_path, shard_by):
        """Many shards must still feed the order-strict archive."""
        archive = RollingArchiveWriter(str(tmp_path), interval_s=300.0,
                                       compress=False)
        mirrored = []
        pipeline = CollectionPipeline(
            PipelineConfig(n_shards=5, shard_by=shard_by,
                           overflow_policy="block", heartbeat_every=16),
            archive=archive,
            mirror=lambda u, retained: mirrored.append(u),
        )
        result = pipeline.run(split_by_vp(synthetic_stream),
                              timeout=TIMEOUT)
        assert_accounted(result)
        # The mirror callback observed a globally time-ordered stream.
        assert all(a.time <= b.time
                   for a, b in zip(mirrored, mirrored[1:]))
        assert len(mirrored) == len(synthetic_stream)
        # The archive replays every retained update.
        replayed = archive.read_range(0.0, float("1e12"))
        assert len(replayed) == result.metrics.retained
        assert len(result.segments) == len(archive.segments)

    def test_validator_and_forwarding_integration(self, synthetic_stream):
        forwarding = ForwardingService()
        target = synthetic_stream[0]
        forwarding.subscribe(
            ForwardingRule("op1", prefix=target.prefix))
        pipeline = CollectionPipeline(
            PipelineConfig(n_shards=3, overflow_policy="block"),
            validator=RouteValidator(),
            forwarding=forwarding,
        )
        result = pipeline.run(split_by_vp(synthetic_stream),
                              timeout=TIMEOUT)
        assert_accounted(result)
        m = result.metrics
        assert m.flagged == len(result.flagged)
        assert m.forwarded == forwarding.forwarded_count
        assert len(forwarding.mailbox("op1")) > 0

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            CollectionPipeline().run({})

    def test_double_start_rejected(self, synthetic_stream):
        pipeline = CollectionPipeline(
            PipelineConfig(overflow_policy="block"))
        streams = split_by_vp(synthetic_stream[:50])
        pipeline.run(streams, timeout=TIMEOUT)
        with pytest.raises(RuntimeError):
            pipeline.start(streams)


class TestOverloadAndDrain:
    def test_drop_policy_accounts_for_every_update(self):
        """Saturated ingest drops updates but never loses count."""
        streams = poisson_session_streams(
            6, rate_per_hour=3600.0, duration_s=400.0, seed=3)
        offered = sum(len(s) for s in streams.values())
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2,
            overflow_policy="drop",
            ingest_queue_capacity=4,
            time_scale=2000.0,
            cost_model=ServiceCostModel(2000.0),   # ~39 upd/s ceiling
        ))
        result = pipeline.run(streams, timeout=TIMEOUT)
        assert_accounted(result)
        m = result.metrics
        assert m.received == offered
        assert m.ingest_dropped > 0
        assert m.loss_fraction > 0.2
        # Everything that entered a queue was drained, not lost.
        assert m.retained + m.discarded == m.processed == m.written

    def test_early_stop_drains_cleanly(self, synthetic_stream):
        """stop() interrupts the sessions; queued updates still land."""
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block", time_scale=100.0))
        pipeline.start(split_by_vp(synthetic_stream))
        pipeline.stop()
        result = pipeline.wait(timeout=TIMEOUT)
        assert_accounted(result)

    def test_live_snapshot_midrun(self, synthetic_stream):
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block", time_scale=3600.0))
        pipeline.start(split_by_vp(synthetic_stream))
        snapshot = pipeline.snapshot()     # must not block or crash
        assert snapshot.received >= 0
        result = pipeline.wait(timeout=TIMEOUT)
        assert_accounted(result)


class TestServiceCostModel:
    def test_costs_follow_daemon_model(self):
        model = ServiceCostModel(1000.0)
        assert model.cost(True) > model.cost(False)
        assert model.cost(False) == pytest.approx(1.2)
        assert model.cost(True) == pytest.approx(51.2)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ServiceCostModel(0.0)

    def test_charge_throttles(self):
        import time
        model = ServiceCostModel(10_000.0, min_sleep_s=0.0)
        start = time.perf_counter()
        for _ in range(20):
            model.charge(retained=True)   # 20 * 51.2 units at 10k/s
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.05            # ~0.1s of modelled work


class TestOrchestratorEpoch:
    def config(self):
        return OrchestratorConfig(
            component1_interval_s=600.0,
            component2_interval_s=2400.0,
            mirror_window_s=600.0,
            events_per_cell=5,
        )

    def test_epoch_matches_sequential_stats(self, synthetic_stream):
        sequential = Orchestrator(self.config())
        for update in sorted(synthetic_stream, key=lambda u: u.time):
            sequential.process(update)

        concurrent = Orchestrator(self.config())
        result = concurrent.run_pipeline_epoch(
            split_by_vp(synthetic_stream),
            PipelineConfig(n_shards=3, overflow_policy="block"),
            timeout=TIMEOUT,
        )
        assert_accounted(result)
        assert concurrent.stats.received == sequential.stats.received
        # Refreshes fire at the epoch boundary rather than mid-stream,
        # so the concurrent epoch performs at least one refresh iff the
        # stream crossed the first deadline.
        assert concurrent.stats.component1_runs >= 1
        assert concurrent.filters is not None
        assert len(concurrent._mirror) <= len(synthetic_stream)

    def test_epoch_quarantines_flagged(self, synthetic_stream):
        orchestrator = Orchestrator(self.config(),
                                    validator=RouteValidator())
        result = orchestrator.run_pipeline_epoch(
            split_by_vp(synthetic_stream),
            PipelineConfig(n_shards=2, overflow_policy="block"),
            timeout=TIMEOUT,
        )
        assert_accounted(result)
        assert len(orchestrator.flagged_updates) == result.metrics.flagged
        assert orchestrator.stats.received == len(synthetic_stream)
        for update in orchestrator.flagged_updates:
            assert update not in orchestrator._mirror
