"""Tests for bounded-queue close/poisoning semantics."""

import threading
import time

import pytest

from repro.pipeline.queues import BoundedQueue, QueueClosed, QueueEmpty, \
    QueueFull


class TestBasics:
    def test_fifo_order(self):
        queue = BoundedQueue(4)
        for item in "abc":
            queue.put(item)
        assert [queue.get() for _ in range(3)] == ["a", "b", "c"]

    def test_try_put_refuses_when_full(self):
        queue = BoundedQueue(1)
        assert queue.try_put(1)
        assert not queue.try_put(2)
        assert queue.get() == 1
        assert queue.try_put(3)

    def test_get_timeout(self):
        queue = BoundedQueue(1)
        with pytest.raises(QueueEmpty):
            queue.get(timeout=0.01)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_gauge_tracks_depth(self):
        queue = BoundedQueue(8)
        for i in range(5):
            queue.put(i)
        assert queue.gauge.value == 5
        assert queue.gauge.high_water == 5


class TestPutTimeout:
    def test_put_timeout_raises_queue_full(self):
        queue = BoundedQueue(1)
        queue.put("first")
        start = time.monotonic()
        with pytest.raises(QueueFull):
            queue.put("second", timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_put_timeout_succeeds_when_space_frees(self):
        queue = BoundedQueue(1)
        queue.put("first")
        threading.Timer(0.02, queue.get).start()
        queue.put("second", timeout=1.0)     # must not raise
        assert queue.get() == "second"


class TestCloseSemantics:
    def test_put_to_closed_queue_raises(self):
        queue = BoundedQueue(4)
        queue.close()
        assert queue.closed
        with pytest.raises(QueueClosed):
            queue.put(1)
        with pytest.raises(QueueClosed):
            queue.try_put(1)

    def test_blocked_producer_wakes_on_close(self):
        """The satellite-task deadlock: a producer stuck in put()
        against a dead consumer must raise instead of hanging."""
        queue = BoundedQueue(1)
        queue.put("clog")
        outcome = []

        def producer():
            try:
                queue.put("stuck")
            except QueueClosed:
                outcome.append("woke")

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)              # producer is now blocked
        assert thread.is_alive()
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert outcome == ["woke"]

    def test_blocked_consumer_wakes_on_close(self):
        queue = BoundedQueue(1)
        outcome = []

        def consumer():
            try:
                queue.get(timeout=5.0)
            except QueueClosed:
                outcome.append("woke")

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert outcome == ["woke"]

    def test_close_drains_buffered_items_first(self):
        queue = BoundedQueue(4)
        queue.put("a")
        queue.put("b")
        queue.close()
        assert queue.get() == "a"
        assert queue.get() == "b"
        with pytest.raises(QueueClosed):
            queue.get()
