"""Property tests for the cluster wire codec.

The serialization contract the IPC path depends on: every payload type
round-trips byte→object→byte without pickle, malformed data raises
``WireError`` instead of mis-decoding, and frames carry their sequence
number and shard id faithfully.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.cluster import wire
from repro.cluster.wire import (
    END_OF_INPUT,
    FRAME_MAGIC,
    FRAME_VERSION,
    EndOfInput,
    WireError,
    decode_frame,
    decode_record,
    encode_frame,
    encode_record,
    iter_frame,
    record_is_traced,
)
from repro.telemetry.distributed import RemoteSpan, TraceContext
from repro.pipeline.stages import (
    END_OF_STREAM,
    Disposition,
    Envelope,
    Heartbeat,
    ShardDone,
    WatermarkAdvance,
)

# -- strategies --------------------------------------------------------------

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FA0),
    min_size=1, max_size=24)

def _prefix(family, length, raw):
    bits = 32 if family == 4 else 128
    host = bits - length
    return Prefix(family, (raw >> host) << host, length)


prefixes = st.one_of(
    st.builds(_prefix, st.just(4),
              st.integers(0, 32), st.integers(0, 2 ** 32 - 1)),
    st.builds(_prefix, st.just(6),
              st.integers(0, 128), st.integers(0, 2 ** 128 - 1)),
)

times = st.floats(min_value=0.0, max_value=2e9,
                  allow_nan=False, allow_infinity=False)

stamps = st.floats(min_value=-1e6, max_value=1e9,
                   allow_nan=False, allow_infinity=False)

announcements = st.builds(
    BGPUpdate, names, times, prefixes,
    st.lists(st.integers(1, 2 ** 32 - 1), max_size=6).map(tuple),
    st.frozensets(st.tuples(st.integers(0, 2 ** 32 - 1),
                            st.integers(0, 2 ** 32 - 1)), max_size=4),
)

withdrawals = st.builds(
    BGPUpdate, names, times, prefixes,
    st.just(()), st.just(frozenset()), st.just(True))

updates = st.one_of(announcements, withdrawals)

envelopes = st.builds(Envelope, updates, names, stamps)

heartbeats = st.one_of(
    st.builds(Heartbeat, names, times),
    st.builds(Heartbeat, names, st.just(END_OF_STREAM)),
)

dispositions = st.builds(Disposition, updates, st.booleans(),
                         names, stamps)

watermarks = st.builds(WatermarkAdvance, st.integers(0, 0xFFFF),
                       names, times)

records = st.one_of(envelopes, heartbeats, dispositions, watermarks,
                    st.just(END_OF_INPUT))

# Traced variants: a sampled TraceContext on an envelope, a closed
# RemoteSpan on a disposition — the two payloads of the v2 frame.
trace_contexts = st.builds(
    TraceContext,
    st.integers(1, 2 ** 64 - 1),        # trace id
    st.integers(0, 2 ** 64 - 1),        # parent span id
    st.just(True))

traced_envelopes = st.builds(Envelope, updates, names, stamps,
                             trace_contexts)

remote_spans = st.builds(
    RemoteSpan.from_wire,
    st.integers(1, 2 ** 64 - 1),        # trace id
    st.integers(1, 2 ** 64 - 1),        # span id
    st.integers(0, 2 ** 31 - 1),        # pid
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False))

traced_dispositions = st.builds(Disposition, updates, st.booleans(),
                                names, stamps, remote_spans)

traced_records = st.one_of(traced_envelopes, traced_dispositions)


# -- record round-trips ------------------------------------------------------

class TestRecordRoundtrip:
    @given(envelopes)
    @settings(max_examples=200)
    def test_envelope(self, envelope):
        assert Envelope.from_bytes(envelope.to_bytes()) == envelope

    @given(heartbeats)
    @settings(max_examples=200)
    def test_heartbeat(self, heartbeat):
        assert Heartbeat.from_bytes(heartbeat.to_bytes()) == heartbeat

    @given(dispositions)
    @settings(max_examples=200)
    def test_disposition(self, disposition):
        assert decode_record(encode_record(disposition)) == disposition

    @given(watermarks)
    def test_watermark(self, advance):
        assert decode_record(encode_record(advance)) == advance

    def test_end_marker(self):
        data = END_OF_INPUT.to_bytes()
        assert data == b"\x03"
        assert EndOfInput.from_bytes(data) == END_OF_INPUT

    def test_shard_done(self):
        assert isinstance(decode_record(encode_record(ShardDone())),
                          ShardDone)

    def test_end_of_stream_heartbeat_survives(self):
        marker = Heartbeat("rrc00", END_OF_STREAM)
        decoded = Heartbeat.from_bytes(marker.to_bytes())
        assert math.isinf(decoded.time)

    def test_trace_is_not_transported(self):
        # Sampled spans are thread-backend-only; the wire form must
        # drop them rather than pickle an unpicklable live object.
        env = Envelope(BGPUpdate("vp", 1.0, Prefix.parse("10.0.0.0/8")),
                       "s", 0.0, trace=object())
        assert Envelope.from_bytes(env.to_bytes()).trace is None


# -- frame round-trips -------------------------------------------------------

class TestFrameRoundtrip:
    @given(st.integers(0, 2 ** 64 - 1), st.integers(0, 0xFFFF),
           st.lists(records, max_size=12))
    @settings(max_examples=100)
    def test_frame(self, sequence, shard, batch):
        encoded = encode_frame(sequence, shard, batch)
        got_seq, got_shard, got = decode_frame(encoded)
        assert got_seq == sequence
        assert got_shard == shard
        assert got == batch

    @given(st.lists(records, min_size=1, max_size=8))
    def test_iter_frame_matches_decode(self, batch):
        encoded = encode_frame(7, 3, batch)
        assert list(iter_frame(encoded)) == batch

    def test_empty_frame(self):
        assert decode_frame(encode_frame(0, 0, [])) == (0, 0, [])

    def test_no_pickle_on_the_wire(self):
        # A frame must be plain struct+MRT bytes: no pickle opcodes.
        batch = [Envelope(BGPUpdate("vp", 1.0,
                                    Prefix.parse("10.0.0.0/8")), "s", 0.0),
                 Heartbeat("s", 2.0), END_OF_INPUT]
        encoded = encode_frame(1, 0, batch)
        assert b"\x80\x04" not in encoded      # pickle protocol 4 magic
        assert b"pickle" not in encoded


# -- traced records and versioned frames -------------------------------------

class TestTracedWire:
    @given(traced_envelopes)
    @settings(max_examples=200)
    def test_traced_envelope_roundtrip(self, envelope):
        # TraceContext is a frozen dataclass, so envelope equality
        # covers the re-hydrated context exactly.
        assert Envelope.from_bytes(envelope.to_bytes()) == envelope

    @given(traced_dispositions)
    @settings(max_examples=200)
    def test_traced_disposition_roundtrip(self, disposition):
        decoded = decode_record(encode_record(disposition))
        span, back = disposition.trace, decoded.trace
        assert isinstance(back, RemoteSpan)
        assert (back.trace_id, back.span_id, back.pid) \
            == (span.trace_id, span.span_id, span.pid)
        assert back.duration_s == pytest.approx(span.duration_s)

    @given(st.integers(0, 2 ** 64 - 1), st.integers(0, 0xFFFF),
           st.lists(st.one_of(records, traced_records), max_size=12))
    @settings(max_examples=100)
    def test_mixed_frame_roundtrip(self, sequence, shard, batch):
        encoded = encode_frame(sequence, shard, batch)
        got_seq, got_shard, got = decode_frame(encoded)
        assert (got_seq, got_shard) == (sequence, shard)
        assert len(got) == len(batch)
        for sent, received in zip(batch, got):
            if isinstance(sent, Disposition) \
                    and isinstance(sent.trace, RemoteSpan):
                assert received.trace.span_id == sent.trace.span_id
            else:
                assert received == sent

    @given(st.lists(records, max_size=8))
    @settings(max_examples=100)
    def test_untraced_frames_stay_v1(self, batch):
        """Tracing-off traffic must be byte-identical to the legacy
        frame format: no magic, no version byte, the ``!QHI`` header
        at offset zero."""
        encoded = encode_frame(9, 2, batch)
        assert encoded[:1] != bytes((FRAME_MAGIC,))
        assert wire._FRAME.unpack_from(encoded)[0] == 9

    @given(st.lists(traced_records, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_traced_frames_carry_version(self, batch):
        encoded = encode_frame(5, 1, batch)
        assert encoded[0] == FRAME_MAGIC
        assert encoded[1] == FRAME_VERSION

    def test_record_is_traced(self):
        update = BGPUpdate("vp", 1.0, Prefix.parse("10.0.0.0/8"))
        plain = Envelope(update, "s", 0.0)
        sampled = Envelope(update, "s", 0.0,
                           trace=TraceContext(7, 3, True))
        unsampled = Envelope(update, "s", 0.0,
                             trace=TraceContext(7, 3, False))
        assert not record_is_traced(plain)
        assert record_is_traced(sampled)
        assert not record_is_traced(unsampled)

    def test_unsupported_frame_version(self):
        encoded = encode_frame(
            1, 0, [Envelope(BGPUpdate("vp", 1.0,
                                      Prefix.parse("10.0.0.0/8")),
                            "s", 0.0, trace=TraceContext(7, 3))])
        bumped = bytes((encoded[0], FRAME_VERSION + 1)) + encoded[2:]
        with pytest.raises(WireError, match="version"):
            decode_frame(bumped)


# -- malformed input ---------------------------------------------------------

class TestMalformed:
    def test_unknown_tag(self):
        with pytest.raises(WireError, match="unknown wire tag"):
            decode_record(b"\xff")

    def test_trailing_bytes(self):
        with pytest.raises(WireError, match="trailing"):
            decode_record(END_OF_INPUT.to_bytes() + b"junk")

    def test_truncated_frame_header(self):
        with pytest.raises(WireError, match="truncated frame header"):
            decode_frame(b"\x00\x01")

    @given(st.lists(records, min_size=1, max_size=4),
           st.integers(min_value=1))
    @settings(max_examples=60)
    def test_truncated_frame_body(self, batch, cut):
        encoded = encode_frame(1, 0, batch)
        cut = min(cut, len(encoded) - wire._FRAME.size)
        if cut <= 0:
            return
        with pytest.raises(WireError):
            decode_frame(encoded[:-cut])

    def test_wrong_record_type(self):
        with pytest.raises(WireError, match="expected a heartbeat"):
            Heartbeat.from_bytes(encode_record(END_OF_INPUT))

    def test_unencodable_type(self):
        with pytest.raises(WireError, match="cannot encode"):
            encode_record(object())
