"""Partitioned collection and the deterministic seal-boundary merge.

Every test compares against the same oracle: a single-process pipeline
over the identical streams.  The merge must reproduce that archive
byte for byte — including under the awkward inputs: equal timestamps
landing in different partitions, a straggler partition whose whole
stream (and therefore its heartbeats) runs late, and partitions that
own no VPs at all.
"""

import json
import os

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.cluster import (
    MergeReport,
    PartitionError,
    PartitionManifest,
    collect_partitioned,
    discover_partitions,
    merge_archives,
    partition_vps,
)
from repro.events import EventPipeline, EventStore, journal_path_for
from repro.gill import GillConfig
from repro.pipeline import CollectionPipeline, PipelineConfig
from repro.telemetry import MetricsRegistry

from .conftest import TIMEOUT, archive_digest, archive_files

P1 = Prefix.parse("10.1.0.0/16")
P2 = Prefix.parse("10.2.0.0/16")


def run_single(streams, directory, gill=False, events=False):
    """The oracle: one single-process epoch over the same streams."""
    archive = RollingArchiveWriter(str(directory), interval_s=300.0,
                                   compress=False, checkpoint=True)
    kwargs = dict(overflow_policy="block")
    if gill:
        kwargs["gill"] = GillConfig(definition=1)
    pipeline = CollectionPipeline(PipelineConfig(**kwargs),
                                  archive=archive)
    if events:
        store = EventStore(journal_path_for(str(directory)))
        EventPipeline(store=store,
                      registry=pipeline.metrics.registry).attach(archive)
    result = pipeline.run(streams, timeout=TIMEOUT)
    assert result.accounted
    return result


def run_partitioned(streams, parts_dir, out_dir, n_partitions,
                    gill=False, events=False, registry=None):
    report = collect_partitioned(
        streams, str(parts_dir), n_partitions, interval_s=300.0,
        compress=False,
        config=PipelineConfig(overflow_policy="block"),
        timeout=TIMEOUT)
    assert report.accounted
    event_pipeline = None
    if events:
        store = EventStore(journal_path_for(str(out_dir)))
        event_pipeline = EventPipeline(
            store=store,
            registry=registry if registry is not None
            else MetricsRegistry())
    merged = merge_archives(
        str(parts_dir), str(out_dir),
        gill=GillConfig(definition=1) if gill else None,
        events=event_pipeline, registry=registry)
    return report, merged


class TestPartitioning:
    def test_round_robin_over_sorted_universe(self):
        parts = partition_vps(["vp3", "vp1", "vp2", "vp5", "vp4"], 2)
        assert parts == [["vp1", "vp3", "vp5"], ["vp2", "vp4"]]

    def test_deterministic_under_input_order(self):
        vps = [f"vp{i}" for i in range(9)]
        assert partition_vps(vps, 4) == partition_vps(reversed(vps), 4)

    def test_empty_partitions_when_oversplit(self):
        parts = partition_vps(["vp1", "vp2"], 4)
        assert parts == [["vp1"], ["vp2"], [], []]

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            partition_vps(["vp1"], 0)

    def test_manifest_roundtrip(self, tmp_path):
        manifest = PartitionManifest(index=1, n_partitions=3,
                                     vps=("vp1", "vp4"),
                                     interval_s=300.0, compress=False)
        manifest.write(str(tmp_path))
        assert PartitionManifest.load(str(tmp_path)) == manifest

    def test_discover_orders_by_index(self, tmp_path):
        for name in ("part-10", "part-2", "part-0", "not-a-part"):
            os.makedirs(tmp_path / name)
        found = discover_partitions(str(tmp_path))
        assert [os.path.basename(p) for p in found] \
            == ["part-0", "part-2", "part-10"]


class TestMergeDifferential:
    def test_merge_matches_single_process(self, streams, tmp_path):
        """3 collector processes + merge == one single-process run,
        with gill and event analysis running at the merge boundary."""
        run_single(streams, tmp_path / "single", gill=True, events=True)
        registry = MetricsRegistry()
        report, merged = run_partitioned(
            streams, tmp_path / "parts", tmp_path / "merged", 3,
            gill=True, events=True, registry=registry)
        assert merged.partitions == 3
        assert merged.empty_partitions == 0
        assert "gill.jsonl" in archive_files(tmp_path / "merged")
        assert "events.jsonl" in archive_files(tmp_path / "merged")
        assert archive_digest(tmp_path / "single") \
            == archive_digest(tmp_path / "merged")
        # The checkpoint manifests carry the guard digests; equality
        # of the files implies equal sha256/crc32 fingerprints.
        with open(tmp_path / "single" / "CHECKPOINT.json") as handle:
            single_manifest = json.load(handle)
        assert all(entry["sha256"] for entry in
                   single_manifest["segments"])
        exposition = registry.prometheus()
        assert "repro_cluster_merge_partitions" in exposition

    def test_duplicate_timestamps_across_partitions(self, tmp_path):
        """Equal-time updates owned by *different* partitions must
        interleave exactly as the single-process writer orders an
        equal-time run (canonical attribute order)."""
        times = [10.0, 10.0, 170.0, 170.0, 170.0, 400.0, 400.0]
        streams = {
            # vp1/vp3 land in partition 0, vp2/vp4 in partition 1.
            "vp1": [BGPUpdate("vp1", t, P1, (1, 10)) for t in times],
            "vp2": [BGPUpdate("vp2", t, P1, (2, 10)) for t in times],
            "vp3": [BGPUpdate("vp3", t, P2, (3, 10)) for t in times],
            "vp4": [BGPUpdate("vp4", t, P2, (4, 10)) for t in times],
        }
        run_single(streams, tmp_path / "single")
        report, merged = run_partitioned(
            streams, tmp_path / "parts", tmp_path / "merged", 2)
        assert merged.updates == len(times) * 4
        assert archive_digest(tmp_path / "single") \
            == archive_digest(tmp_path / "merged")

    def test_straggler_partition(self, tmp_path):
        """One partition's whole stream runs late (its sessions
        heartbeat far behind the others): the merge is still the
        canonical order, and the skew shows up as merge lag."""
        early = {f"vp{i}": [BGPUpdate(f"vp{i}", t, P1, (i, 99))
                            for t in (5.0, 40.0, 80.0, 120.0)]
                 for i in (1, 3)}
        # vp2 sorts between vp1 and vp3, so its partition differs; its
        # updates all arrive an interval later than everyone else's.
        straggler = {"vp2": [BGPUpdate("vp2", t, P2, (2, 99))
                             for t in (700.0, 750.0, 800.0)]}
        streams = {**early, **straggler}
        run_single(streams, tmp_path / "single")
        report, merged = run_partitioned(
            streams, tmp_path / "parts", tmp_path / "merged", 2)
        assert archive_digest(tmp_path / "single") \
            == archive_digest(tmp_path / "merged")
        assert merged.max_lag_s >= 580.0

    def test_empty_partition(self, streams, tmp_path):
        """More partitions than VPs: the surplus partitions publish a
        manifest and zero segments, and the merge treats them as
        no-ops."""
        two_vps = {name: streams[name]
                   for name in sorted(streams)[:2]}
        run_single(two_vps, tmp_path / "single")
        report, merged = run_partitioned(
            two_vps, tmp_path / "parts", tmp_path / "merged", 4)
        assert len(report.results) == 4
        assert sum(1 for r in report.results if not r.vps) == 2
        assert merged.partitions == 4
        assert merged.empty_partitions == 2
        assert archive_digest(tmp_path / "single") \
            == archive_digest(tmp_path / "merged")


class TestMergeValidation:
    def test_rejects_missing_partitions(self, tmp_path):
        with pytest.raises(PartitionError):
            merge_archives(str(tmp_path), str(tmp_path / "out"))
        with pytest.raises(PartitionError):
            merge_archives([], str(tmp_path / "out"))

    def test_rejects_disagreeing_intervals(self, tmp_path):
        for index, interval in enumerate((300.0, 900.0)):
            part = tmp_path / f"part-{index}"
            os.makedirs(part)
            PartitionManifest(index=index, n_partitions=2, vps=(),
                              interval_s=interval,
                              compress=False).write(str(part))
        with pytest.raises(PartitionError, match="interval"):
            merge_archives(str(tmp_path), str(tmp_path / "out"))

    def test_collect_rejects_gill_and_faults(self, streams):
        from repro.pipeline import FaultPlan

        with pytest.raises(ValueError, match="merge time"):
            collect_partitioned(
                streams, "/tmp/unused", 2,
                config=PipelineConfig(gill=GillConfig(definition=1)))
        with pytest.raises(ValueError, match="clean"):
            collect_partitioned(
                streams, "/tmp/unused", 2,
                config=PipelineConfig(
                    fault_plan=FaultPlan.parse("io-error=writer@2")))
