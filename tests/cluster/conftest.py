"""Shared fixtures for the multi-process cluster tests."""

import hashlib
import os

import pytest

from repro.workload import StreamConfig, SyntheticStreamGenerator, \
    split_by_vp

TIMEOUT = 60.0

#: Every file class that must be byte-identical across backends and
#: across a partitioned merge: the MRT segments themselves, the gill
#: and event journals, and the checkpoint manifest carrying the guard
#: digests of every sealed segment.
DETERMINISTIC_FILES = (".mrt", ".jsonl")


def archive_digest(directory) -> str:
    """SHA-256 over every determinism-relevant file, name-tagged."""
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        if name.endswith(DETERMINISTIC_FILES) or name == "CHECKPOINT.json":
            digest.update(name.encode())
            with open(os.path.join(directory, name), "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def archive_files(directory):
    return sorted(name for name in os.listdir(directory)
                  if name.endswith(DETERMINISTIC_FILES)
                  or name == "CHECKPOINT.json")


@pytest.fixture(scope="module")
def streams():
    """Per-VP session streams of a moderate synthetic epoch."""
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=10, n_prefix_groups=8, duration_s=1200.0, seed=13,
    ))
    _, stream = generator.generate()
    return split_by_vp(stream)
