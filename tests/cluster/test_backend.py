"""The ``processes`` worker backend: determinism, config, telemetry.

The load-bearing property is *byte identity*: the same seeded epoch
must publish the exact same archive bytes — segments, gill journal,
event journal, checkpoint manifest with guard digests — whether the
shard workers are threads in one process or supervised OS processes
fed over the batched wire protocol.
"""

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.events import EventPipeline, EventStore, journal_path_for
from repro.gill import GillConfig
from repro.pipeline import (
    CollectionPipeline,
    FaultPlan,
    PipelineConfig,
    render_metrics,
)
from repro.telemetry.top import render_top

from .conftest import TIMEOUT, archive_digest, archive_files


def run_epoch(streams, directory, backend, workers=3, gill=True,
              events=True, fault_plan=None, supervision=None,
              trace_sample_rate=0.0):
    """One full collection epoch with every journaling layer on."""
    kwargs = dict(overflow_policy="block", backend=backend,
                  fault_plan=fault_plan,
                  trace_sample_rate=trace_sample_rate)
    if backend == "processes":
        kwargs["workers"] = workers
    else:
        kwargs["n_shards"] = workers
    if gill:
        kwargs["gill"] = GillConfig(definition=1)
    if supervision is not None:
        kwargs["supervision"] = supervision
    archive = RollingArchiveWriter(str(directory), interval_s=300.0,
                                   compress=False, checkpoint=True)
    pipeline = CollectionPipeline(PipelineConfig(**kwargs),
                                  archive=archive)
    if events:
        store = EventStore(journal_path_for(str(directory)))
        EventPipeline(store=store,
                      registry=pipeline.metrics.registry).attach(archive)
    result = pipeline.run(streams, timeout=TIMEOUT)
    assert result.accounted, "pipeline lost queued updates"
    return pipeline, result


class TestBackendConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            PipelineConfig(backend="fibers")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            PipelineConfig(backend="processes", workers=0)

    def test_workers_become_shards(self):
        config = PipelineConfig(backend="processes", workers=5)
        assert config.n_shards == 5

    def test_tracing_allowed_on_processes(self):
        # Distributed tracing: the sampled context rides the wire and
        # is stitched back at the coordinator, so the processes
        # backend accepts a sample rate (it used to reject one).
        config = PipelineConfig(backend="processes", workers=2,
                                trace_sample_rate=0.5)
        assert config.trace_sample_rate == 0.5

    def test_worker_kill_needs_processes(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                fault_plan=FaultPlan.parse("worker-kill=shard0@10"))

    def test_stall_needs_threads(self):
        with pytest.raises(ValueError):
            PipelineConfig(backend="processes", workers=2,
                           fault_plan=FaultPlan.parse(
                               "stall=shard0@10~0.1"))

    def test_rejects_bad_ipc_tuning(self):
        with pytest.raises(ValueError):
            PipelineConfig(ipc_batch=0)
        with pytest.raises(ValueError):
            PipelineConfig(ipc_linger_s=-1.0)


class TestBackendDifferential:
    def test_processes_byte_identical_to_threads(self, streams,
                                                 tmp_path):
        """Same epoch, both backends: every published byte matches —
        MRT segments, gill.jsonl, events.jsonl, and the checkpoint
        manifest whose guard digests fingerprint each segment."""
        run_epoch(streams, tmp_path / "threads", "threads")
        run_epoch(streams, tmp_path / "processes", "processes")
        assert archive_files(tmp_path / "threads") \
            == archive_files(tmp_path / "processes")
        assert "gill.jsonl" in archive_files(tmp_path / "threads")
        assert "events.jsonl" in archive_files(tmp_path / "threads")
        assert archive_digest(tmp_path / "threads") \
            == archive_digest(tmp_path / "processes")

    def test_worker_counts_agree(self, streams, tmp_path):
        """Worker count must not change what is published, only how
        the shards are laid out across processes."""
        run_epoch(streams, tmp_path / "two", "processes", workers=2,
                  gill=False, events=False)
        run_epoch(streams, tmp_path / "four", "processes", workers=4,
                  gill=False, events=False)
        assert archive_digest(tmp_path / "two") \
            == archive_digest(tmp_path / "four")


class TestDistributedTracing:
    def test_stitched_trace_spans_two_pids(self, streams, tmp_path):
        """A sampled update's trace crosses the wire: the worker's
        span (another PID) is grafted back into the coordinator's, so
        one trace covers ingest → feeder-batch → worker-shard →
        coordinator-writer across at least two processes."""
        pipeline, _ = run_epoch(streams, tmp_path / "traced",
                                "processes", gill=False, events=False,
                                trace_sample_rate=0.05)
        tracer = pipeline.metrics.tracer
        stitched = tracer.stitched_traces(n=50, min_pids=2)
        assert stitched, "no trace was stitched across processes"
        record = stitched[0]
        stage_names = [name for name, _ in record.stages]
        for stage in ("ingest", "feeder-batch", "worker-shard",
                      "coordinator-writer"):
            assert stage in stage_names, stage_names
        assert len(record.pids) >= 2

    def test_tracing_preserves_byte_identity(self, streams, tmp_path):
        """Tracing is observability, not behaviour: a traced epoch
        publishes the exact bytes an untraced one does — segments,
        journals, checkpoint digests."""
        run_epoch(streams, tmp_path / "traced", "processes",
                  trace_sample_rate=0.05)
        run_epoch(streams, tmp_path / "untraced", "processes")
        assert archive_digest(tmp_path / "traced") \
            == archive_digest(tmp_path / "untraced")


class TestFlightRecorder:
    def test_worker_kill_dumps_and_journals(self, streams, tmp_path):
        """A worker SIGKILL leaves a black box: the coordinator dumps
        its flight recorder next to the archive, and the events
        pipeline journals a resolved ``crash`` incident pointing at
        the dump file."""
        import json
        import zlib

        workers = 3
        # Kill a shard that actually receives traffic.
        shard = zlib.crc32(sorted(streams)[0].encode()) % workers
        plan = FaultPlan.parse(f"worker-kill=shard{shard}@40")
        directory = tmp_path / "kill"
        _, result = run_epoch(streams, directory, "processes",
                              workers=workers, gill=False,
                              events=True, fault_plan=plan)
        assert any("respawned" in line for line in result.fault_log)

        dump_path = directory / "flightrecorder-coordinator.json"
        assert dump_path.exists()
        doc = json.loads(dump_path.read_text())
        assert doc["incidents"] == [
            {"kind": "worker-kill", "position": 40, "shard": shard}]
        assert doc["entries"], "black-box ring was empty"

        store = EventStore(journal_path_for(str(directory)))
        crash = [e for e in store.events() if e.type == "crash"]
        assert len(crash) == 1
        event = crash[0]
        assert event.id == f"crash-shard{shard}-40"
        assert event.state == "resolved"
        assert event.evidence[0].extra["flightrecorder"] \
            == "flightrecorder-coordinator.json"


class TestClusterTelemetry:
    def test_snapshot_and_renderings(self, streams, tmp_path):
        pipeline, result = run_epoch(streams, tmp_path / "arch",
                                     "processes", gill=False,
                                     events=False)
        cluster = result.metrics.cluster
        assert cluster is not None
        assert cluster.frames_out > 0
        assert cluster.frames_in > 0
        assert cluster.ipc_bytes_out > 0
        assert cluster.ipc_bytes_in > 0
        assert cluster.mean_batch > 0
        assert cluster.respawns == 0
        assert cluster.active

        # The families are in the shared registry (one /metrics scrape
        # covers the cluster) and both operator renderings show them.
        exposition = pipeline.metrics.registry.prometheus()
        assert "repro_cluster_frames_total" in exposition
        assert "repro_cluster_ipc_bytes_total" in exposition
        assert "cluster:" in render_metrics(result.metrics)
        frame = render_top(pipeline.metrics.registry.to_json())
        assert "cluster:" in frame
        assert "ipc" in frame

    def test_threads_backend_stays_silent(self, streams, tmp_path):
        pipeline, result = run_epoch(streams, tmp_path / "arch",
                                     "threads", gill=False,
                                     events=False)
        assert result.metrics.cluster is None
        assert "cluster:" not in render_metrics(result.metrics)
        assert "cluster:" not in render_top(
            pipeline.metrics.registry.to_json())
