"""Chaos for the processes backend: worker SIGKILL and crash-resume.

A shard worker is an OS process; the failure the supervisor must
absorb is the hard one — SIGKILL mid-batch, no cleanup, result frame
never sent.  The coordinator respawns the worker and redelivers every
unacknowledged frame, and because workers are stateless between frames
the replay is idempotent: the published archive must match a fault-free
run byte for byte.
"""

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.cluster.backend import WorkerDeath
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.pipeline import (
    CollectionPipeline,
    FaultPlan,
    InjectedCrash,
    PipelineConfig,
    SupervisorConfig,
)

from .conftest import TIMEOUT, archive_digest


def processes_config(fault_plan=None, workers=3, **overrides):
    supervision = SupervisorConfig(
        backoff_initial_s=0.005, backoff_max_s=0.02,
        **overrides.pop("supervision_overrides", {}))
    return PipelineConfig(backend="processes", workers=workers,
                          overflow_policy="block",
                          fault_plan=fault_plan,
                          supervision=supervision, **overrides)


def run(streams, directory, config):
    archive = RollingArchiveWriter(str(directory), interval_s=300.0,
                                   compress=False, checkpoint=True)
    pipeline = CollectionPipeline(config, archive=archive)
    result = pipeline.run(streams, timeout=TIMEOUT)
    return pipeline, result


class TestWorkerKill:
    def test_kill_respawns_and_archive_matches(self, streams,
                                               tmp_path):
        _, clean = run(streams, tmp_path / "clean", processes_config())
        assert clean.accounted

        plan = FaultPlan.parse("worker-kill=shard1@40")
        _, killed = run(streams, tmp_path / "killed",
                        processes_config(fault_plan=plan))
        assert killed.accounted
        assert killed.metrics.supervision.worker_restarts == 1
        assert killed.metrics.cluster.respawns == 1
        assert any("respawned shard1" in entry
                   for entry in killed.fault_log)
        assert archive_digest(tmp_path / "clean") \
            == archive_digest(tmp_path / "killed")

    def test_repeated_kills_on_one_shard(self, streams, tmp_path):
        _, clean = run(streams, tmp_path / "clean", processes_config())
        plan = FaultPlan.parse("worker-kill=shard0@25x3")
        _, killed = run(streams, tmp_path / "killed",
                        processes_config(fault_plan=plan))
        assert killed.accounted
        assert killed.metrics.cluster.respawns == 3
        assert archive_digest(tmp_path / "clean") \
            == archive_digest(tmp_path / "killed")

    def test_respawn_budget_exhaustion_is_fatal(self, streams,
                                                tmp_path):
        """More kills than ``quarantine_after`` respawns: the lane is
        declared dead and the run fails loudly instead of hanging."""
        plan = FaultPlan.parse("worker-kill=shard0@5x8")
        config = processes_config(
            fault_plan=plan,
            supervision_overrides=dict(quarantine_after=2))
        with pytest.raises(WorkerDeath):
            run(streams, tmp_path / "arch", config)

    def test_seeded_chaos_includes_worker_kills(self):
        plan = FaultPlan.seeded(3, ["vp1", "vp2"], 2, horizon=100,
                                stalls=0, worker_kills=2)
        kills = [s for s in plan.specs if s.kind == "worker-kill"]
        assert len(kills) == 2
        assert all(s.target.startswith("shard") for s in kills)
        # Same seed, same plan — chaos runs are reproducible.
        again = FaultPlan.seeded(3, ["vp1", "vp2"], 2, horizon=100,
                                 stalls=0, worker_kills=2)
        assert plan.describe() == again.describe()


class TestCrashResume:
    def orchestrator(self):
        return Orchestrator(OrchestratorConfig(
            component1_interval_s=600.0,
            component2_interval_s=2400.0,
            mirror_window_s=600.0,
            events_per_cell=5,
        ))

    def test_interrupted_epoch_resumes_on_processes_backend(
            self, streams, tmp_path):
        """The coordinator crashes mid-epoch (injected writer crash —
        worker processes die with their coordinator), then a fresh
        orchestrator resumes with ``resume=True`` on the processes
        backend and the archive finishes exactly as an uninterrupted
        epoch."""
        baseline_dir = tmp_path / "baseline"
        baseline = RollingArchiveWriter(str(baseline_dir),
                                        interval_s=300.0,
                                        compress=False, checkpoint=True)
        self.orchestrator().run_pipeline_epoch(
            streams, processes_config(), archive=baseline,
            timeout=TIMEOUT)

        crashed_dir = tmp_path / "crashed"
        archive = RollingArchiveWriter(str(crashed_dir),
                                       interval_s=300.0,
                                       compress=False, checkpoint=True)
        with pytest.raises(InjectedCrash):
            self.orchestrator().run_pipeline_epoch(
                streams,
                processes_config(
                    fault_plan=FaultPlan.parse("crash=writer@60")),
                archive=archive, timeout=TIMEOUT)

        resumed_archive = RollingArchiveWriter(str(crashed_dir),
                                               interval_s=300.0,
                                               compress=False,
                                               checkpoint=True)
        resumed = self.orchestrator()
        result = resumed.run_pipeline_epoch(
            streams, processes_config(), archive=resumed_archive,
            timeout=TIMEOUT, resume=True)
        assert result.accounted
        assert resumed.stats.epoch_resumes == 1
        assert archive_digest(baseline_dir) \
            == archive_digest(crashed_dir)

    def test_worker_kill_during_resumed_epoch(self, streams, tmp_path):
        """Chaos on top of recovery: the resumed epoch itself loses a
        worker to SIGKILL and still converges to the baseline."""
        baseline_dir = tmp_path / "baseline"
        baseline = RollingArchiveWriter(str(baseline_dir),
                                        interval_s=300.0,
                                        compress=False, checkpoint=True)
        self.orchestrator().run_pipeline_epoch(
            streams, processes_config(), archive=baseline,
            timeout=TIMEOUT)

        crashed_dir = tmp_path / "crashed"
        with pytest.raises(InjectedCrash):
            self.orchestrator().run_pipeline_epoch(
                streams,
                processes_config(
                    fault_plan=FaultPlan.parse("crash=writer@60")),
                archive=RollingArchiveWriter(str(crashed_dir),
                                             interval_s=300.0,
                                             compress=False,
                                             checkpoint=True),
                timeout=TIMEOUT)

        plan = FaultPlan.parse("worker-kill=shard1@20")
        resumed = self.orchestrator()
        result = resumed.run_pipeline_epoch(
            streams, processes_config(fault_plan=plan),
            archive=RollingArchiveWriter(str(crashed_dir),
                                         interval_s=300.0,
                                         compress=False,
                                         checkpoint=True),
            timeout=TIMEOUT, resume=True)
        assert result.accounted
        assert result.metrics.cluster.respawns == 1
        assert archive_digest(baseline_dir) \
            == archive_digest(crashed_dir)
