"""Tests for trace-span sampling, both standalone and in-pipeline."""

import pytest

from repro.pipeline import CollectionPipeline, PipelineConfig
from repro.telemetry import (
    NOOP_TRACE,
    MetricsRegistry,
    Tracer,
    render_slow_traces,
)
from repro.workload import StreamConfig, SyntheticStreamGenerator, \
    split_by_vp

TIMEOUT = 30.0


def small_stream(seed=31):
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=5, n_prefix_groups=5, duration_s=600.0, seed=seed,
    ))
    _, updates = generator.generate()
    return updates


class TestSampling:
    def test_rate_one_samples_every_update(self):
        tracer = Tracer(1.0, registry=MetricsRegistry())
        spans = [tracer.start("vp") for _ in range(50)]
        assert all(span is not NOOP_TRACE for span in spans)

    def test_rate_zero_allocates_nothing(self):
        """The no-op span is one shared singleton (identity check)."""
        tracer = Tracer(0.0, registry=MetricsRegistry())
        for _ in range(1000):
            assert tracer.start("vp") is NOOP_TRACE
        # Nothing was recorded anywhere.
        assert tracer._sampled.value == 0
        assert tracer.recent() == []

    def test_stride_honours_rate(self):
        tracer = Tracer(0.1, registry=MetricsRegistry())
        sampled = sum(tracer.start("vp") is not NOOP_TRACE
                      for _ in range(1000))
        assert sampled == 100

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(1.5)
        with pytest.raises(ValueError):
            Tracer(-0.1)

    def test_noop_trace_absorbs_all_calls(self):
        NOOP_TRACE.mark("ingest")
        NOOP_TRACE.finish()
        NOOP_TRACE.abort()


class TestSpans:
    def test_stage_sums_equal_total(self):
        registry = MetricsRegistry()
        tracer = Tracer(1.0, registry=registry)
        span = tracer.start("vp-1")
        span.mark("ingest")
        span.mark("process")
        span.mark("write")
        span.finish()
        [record] = tracer.recent()
        assert record.session == "vp-1"
        assert [stage for stage, _ in record.stages] \
            == ["ingest", "process", "write"]
        assert sum(dt for _, dt in record.stages) \
            == pytest.approx(record.total_s)
        # The histograms saw the same span.
        span_hist = tracer._span_hist.labels()
        assert span_hist.count == 1
        assert span_hist.sum == pytest.approx(record.total_s)

    def test_abort_counts_but_records_nothing(self):
        tracer = Tracer(1.0, registry=MetricsRegistry())
        span = tracer.start("vp-1")
        span.mark("ingest")
        span.abort()
        assert tracer._aborted.value == 1
        assert tracer._sampled.value == 0
        assert tracer.recent() == []

    def test_ring_keeps_only_slow_spans(self):
        tracer = Tracer(1.0, registry=MetricsRegistry(),
                        slow_threshold_s=10.0)
        span = tracer.start("vp-1")
        span.mark("write")
        span.finish()
        assert tracer.recent() == []         # fast span filtered out
        assert tracer._sampled.value == 1    # but still counted

    def test_ring_is_bounded_and_slowest_first(self):
        tracer = Tracer(1.0, registry=MetricsRegistry(), ring_size=4)
        for _ in range(10):
            span = tracer.start("vp-1")
            span.mark("write")
            span.finish()
        assert len(tracer.recent()) == 4
        slow = tracer.slow_traces(2)
        assert len(slow) == 2
        assert slow[0].total_s >= slow[1].total_s

    def test_render_slow_traces(self):
        tracer = Tracer(1.0, registry=MetricsRegistry())
        span = tracer.start("vp-9")
        span.mark("write")
        span.finish()
        text = render_slow_traces(tracer.slow_traces())
        assert "vp-9" in text and "write" in text
        assert render_slow_traces([]) == "no sampled spans\n"


class TestPipelineIntegration:
    def test_rate_one_spans_every_written_update(self):
        updates = small_stream()
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block",
            trace_sample_rate=1.0, trace_ring=16))
        result = pipeline.run(split_by_vp(updates), timeout=TIMEOUT)
        tracer = pipeline.metrics.tracer
        # Every update that reached the writer finished a span.
        assert tracer._sampled.value == result.metrics.written
        assert result.metrics.written == len(updates)
        # Stage histograms cover the full path and their counts agree
        # with the end-to-end histogram.
        stages = {key[0] for key, _ in tracer._stage_hist.children()}
        assert stages == {"ingest", "queue", "process", "write"}
        for _, child in tracer._stage_hist.children():
            assert child.count == result.metrics.written
        # Per-span stage sums equal the end-to-end time exactly.
        for record in tracer.recent():
            assert sum(dt for _, dt in record.stages) \
                == pytest.approx(record.total_s)
        # Exposition carries the trace families.
        text = pipeline.metrics.registry.prometheus()
        assert f"repro_trace_spans_total {int(tracer._sampled.value)}" \
            in text
        assert 'repro_trace_stage_seconds_count{stage="write"}' in text

    def test_rate_zero_leaves_envelopes_untraced(self):
        updates = small_stream(seed=32)
        pipeline = CollectionPipeline(PipelineConfig(
            n_shards=2, overflow_policy="block"))
        result = pipeline.run(split_by_vp(updates), timeout=TIMEOUT)
        tracer = pipeline.metrics.tracer
        assert not tracer.enabled
        assert tracer._sampled.value == 0
        assert tracer.recent() == []
        assert result.metrics.written == len(updates)

    def test_invalid_config_rate_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(trace_sample_rate=2.0)
