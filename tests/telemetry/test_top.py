"""Tests for the terminal dashboard renderer and its URL plumbing."""

import io
import time

from repro.pipeline.metrics import PipelineMetrics
from repro.telemetry import (
    TopDashboard,
    normalize_metrics_url,
    render_top,
)


def busy_metrics():
    """A PipelineMetrics hub with representative activity."""
    metrics = PipelineMetrics()
    metrics.register_session("vp-1")
    metrics.register_session("vp-2")
    for _ in range(100):
        metrics.session_enqueued("vp-1")
    for _ in range(40):
        metrics.session_enqueued("vp-2")
    metrics.session_dropped("vp-2", 10)
    metrics.session_restarted("vp-2")
    metrics.session_quarantined("vp-2")
    for _ in range(130):
        metrics.update_processed(retained=True)
        metrics.process.latency.record(0.002)
        metrics.write.add(processed=1)
        metrics.write.latency.record(0.004)
    metrics.segment_flushed(3)
    metrics.writer_advanced(1500.0)
    metrics.query.query_served(cache_hit=True, returned=5)
    metrics.query.query_served(cache_hit=False, returned=9)
    metrics.query.plan_executed(considered=4, pruned_time=1,
                                pruned_index=1, decoded=2)
    return metrics


class TestRenderTop:
    def test_single_frame_totals(self):
        metrics = busy_metrics()
        now = time.time()
        frame = render_top(metrics.registry.to_json(), now=now + 4.0,
                           source="unit-test")
        assert "== repro-bgp top ==  unit-test" in frame
        # Watermark line shows its age, not a raw wall timestamp.
        assert "watermark 1500 (advanced" in frame
        assert "s ago)" in frame
        assert "segments 3" in frame
        # Stage rows: processed totals, em dash for the latency-less
        # ingest stage, real means elsewhere.
        lines = {line.split()[0]: line for line in frame.splitlines()
                 if line.strip()}
        assert "140" in lines["ingest"] and "—" in lines["ingest"]
        assert "130" in lines["process"] and "2.0ms" in lines["process"]
        # Rates need a previous frame.
        assert "-" in lines["ingest"].split()
        # Session rows with quarantine state.
        assert "vp-1" in lines and "ok" in lines["vp-1"]
        assert "vp-2" in lines and "quar" in lines["vp-2"]
        # Query line.
        assert "query: 2 served" in frame
        assert "cache hit 50.0%" in frame

    def test_rates_from_two_frames(self):
        metrics = busy_metrics()
        before = metrics.registry.to_json()
        for _ in range(50):
            metrics.session_enqueued("vp-1")
        after = metrics.registry.to_json()
        frame = render_top(after, before, dt_s=2.0)
        vp1 = next(line for line in frame.splitlines()
                   if line.strip().startswith("vp-1"))
        assert "25/s" in vp1
        ingest = next(line for line in frame.splitlines()
                      if line.strip().startswith("ingest"))
        assert "25/s" in ingest

    def test_supervision_line_only_when_fired(self):
        metrics = busy_metrics()
        assert "supervision:" not in render_top(
            PipelineMetrics().registry.to_json())
        metrics.worker_restarted(0)
        frame = render_top(metrics.registry.to_json())
        assert "supervision:" in frame
        assert "worker_restart 1" in frame

    def test_empty_registry_renders_header_only(self):
        frame = render_top({"families": []})
        assert frame.startswith("== repro-bgp top ==")


class TestUrlNormalization:
    def test_host_port(self):
        assert normalize_metrics_url("localhost:8480") \
            == "http://localhost:8480/metrics?format=json"

    def test_full_url_kept(self):
        assert normalize_metrics_url(
            "http://x:1/metrics?format=json") \
            == "http://x:1/metrics?format=json"

    def test_base_url_gets_path(self):
        assert normalize_metrics_url("http://x:1/") \
            == "http://x:1/metrics?format=json"


class TestDashboard:
    def test_run_renders_frames_with_rates(self):
        metrics = busy_metrics()
        frames = [metrics.registry.to_json()]

        def fake_fetch(url):
            for _ in range(30):
                metrics.session_enqueued("vp-1")
            return metrics.registry.to_json()

        dashboard = TopDashboard("localhost:1", interval_s=0.01,
                                 fetch=fake_fetch)
        out = io.StringIO()
        dashboard.run(iterations=2, out=out, clear=False)
        text = out.getvalue()
        assert text.count("== repro-bgp top ==") == 2
        assert "/s" in text           # second frame has rate columns

    def test_render_once(self):
        metrics = busy_metrics()
        dashboard = TopDashboard(
            "localhost:1", fetch=lambda url: metrics.registry.to_json())
        assert "watermark 1500" in dashboard.render_once()


class TestGillPanel:
    def gill_metrics(self):
        """A registry with gill filter activity, as GillStage emits it."""
        from repro.bgp.message import BGPUpdate
        from repro.bgp.prefix import Prefix
        from repro.gill import GillConfig, GillStage

        stage = GillStage(GillConfig(definition=1, auto_anchors=False),
                          ("vp1", "vp2"), interval_s=300.0)
        prefix = Prefix.from_index(1)
        stage.offer(BGPUpdate("vp1", 10.0, prefix, (1, 2)))
        stage.offer(BGPUpdate("vp2", 20.0, prefix, (1, 2)))
        stage.flush()
        return stage.registry

    def test_gill_line_renders(self):
        frame = render_top(self.gill_metrics().to_json())
        assert "gill: dropped 1/2 (50.0%)" in frame
        assert "anchors 0" in frame
        assert "rescore mean" in frame

    def test_gill_line_absent_without_activity(self):
        metrics = busy_metrics()
        frame = render_top(metrics.registry.to_json())
        assert "gill:" not in frame
