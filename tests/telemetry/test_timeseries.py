"""Tests for the snapshot time-series layer (deltas, rates, JSONL)."""

import json

import pytest

from repro.telemetry import MetricsRegistry, TimeSeriesSampler


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestSampling:
    def test_rates_are_first_differences(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")
        gauge = registry.gauge("repro_depth")
        clock = FakeClock()
        sampler = TimeSeriesSampler(registry, clock=clock)

        counter.inc(10)
        gauge.set(3)
        first = sampler.sample_once()
        assert first.dt_s == 0.0
        assert first.rates == {}          # no previous point yet
        assert first.values["repro_events_total"] == 10.0

        counter.inc(40)
        gauge.set(9)
        clock.advance(2.0)
        second = sampler.sample_once()
        assert second.dt_s == pytest.approx(2.0)
        assert second.rate("repro_events_total") == pytest.approx(20.0)
        # Gauges are sampled, never rated.
        assert "repro_depth" not in second.rates
        assert second.values["repro_depth"] == 9.0

    def test_histogram_series_rate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", bounds=(1.0,))
        clock = FakeClock()
        sampler = TimeSeriesSampler(registry, clock=clock)
        sampler.sample_once()
        for _ in range(6):
            hist.record(0.5)
        clock.advance(3.0)
        point = sampler.sample_once()
        assert point.rate("repro_lat_seconds_count") \
            == pytest.approx(2.0)
        assert point.rate("repro_lat_seconds_sum") \
            == pytest.approx(1.0)

    def test_ring_is_bounded(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        sampler = TimeSeriesSampler(registry, ring_size=3, clock=clock)
        for _ in range(7):
            clock.advance(1.0)
            sampler.sample_once()
        points = sampler.points()
        assert len(points) == 3
        assert points == sorted(points, key=lambda p: p.wall_time)
        assert sampler.latest() is points[-1]

    def test_series_accessor(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")
        clock = FakeClock()
        sampler = TimeSeriesSampler(registry, clock=clock)
        for value in (1, 2, 3):
            counter.inc()
            clock.advance(1.0)
            sampler.sample_once()
        assert sampler.series("repro_events_total") == [1.0, 2.0, 3.0]
        assert sampler.rate("repro_events_total") == pytest.approx(1.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(MetricsRegistry(), interval_s=0.0)


class TestJsonl:
    def test_points_append_as_json_lines(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")
        clock = FakeClock()
        path = tmp_path / "series.jsonl"
        sampler = TimeSeriesSampler(registry, jsonl_path=str(path),
                                    clock=clock)
        counter.inc(5)
        sampler.sample_once()
        counter.inc(5)
        clock.advance(2.0)
        sampler.sample_once()
        sampler.stop()        # no thread started; just closes the file

        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["values"]["repro_events_total"] == 5.0
        assert lines[1]["rates"]["repro_events_total"] \
            == pytest.approx(2.5)
        assert lines[1]["t"] - lines[0]["t"] == pytest.approx(2.0)


class TestThread:
    def test_start_stop_collects_points(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")
        sampler = TimeSeriesSampler(registry, interval_s=0.02)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        counter.inc(3)
        import time
        time.sleep(0.1)
        sampler.stop()
        points = sampler.points()
        # Baseline at start + periodic + final tail sample.
        assert len(points) >= 3
        assert points[-1].values["repro_events_total"] == 3.0
        # Stopping again is harmless.
        sampler.stop()
