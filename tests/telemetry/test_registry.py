"""Tests for the metrics registry and both exposition formats."""

import json
import math
import re
import threading

import pytest

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    to_json,
    to_prometheus,
)


class TestFamilies:
    def test_counter_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_high_water_and_touched(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth", labels=("stage",),
                               track_high_water=True)
        child = gauge.labels("ingest")
        assert not child.touched
        child.set(7)
        child.set(3)
        assert child.value == 3
        assert child.high_water == 7
        assert child.touched

    def test_labels_get_or_create_same_child(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total",
                                  labels=("a", "b"))
        one = family.labels("p", "q")
        two = family.labels("p", "q")
        other = family.labels("p", "r")
        assert one is two
        assert one is not other
        assert family.labels(a="p", b="q") is one

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total", labels=("a",))
        with pytest.raises(ValueError):
            family.labels("p", "q")
        with pytest.raises(ValueError):
            family.labels(bogus="p")

    def test_registration_is_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", labels=("a",))
        again = registry.counter("repro_x_total", labels=("a",))
        assert first is again

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labels=("a",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("repro_ok", labels=("bad-label",))


class TestHistogram:
    def test_records_land_in_buckets(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.record(0.5)
        hist.record(1.5)
        hist.record(99.0)       # overflow bucket
        snap = hist.snapshot()
        assert snap.count == 3
        assert snap.counts == (1, 1, 1)
        assert snap.sum == pytest.approx(101.0)
        assert snap.mean == pytest.approx(101.0 / 3)

    def test_percentile_semantics(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            hist.record(value)
        assert hist.percentile(0.5) == 1.0
        assert hist.percentile(1.0) == 4.0
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0

    def test_snapshot_is_atomic_pair(self):
        """The torn-read fix: mean is always sum/count of one moment."""
        hist = Histogram(bounds=(1.0,))
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                hist.record(1.0)

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            for _ in range(2000):
                snap = hist.snapshot()
                if snap.count:
                    # Every recorded value is exactly 1.0, so any
                    # torn (sum, count) pair shows up as mean != 1.
                    assert snap.mean == pytest.approx(1.0)
                    assert snap.sum == pytest.approx(snap.count)
        finally:
            stop.set()
            for thread in writers:
                thread.join()


class TestExposition:
    def _sample_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total",
                                   "Events.", labels=("kind",))
        counter.labels("ok").inc(3)
        counter.labels('we"ird\n\\').inc()
        registry.gauge("repro_depth", "Depth.",
                       track_high_water=True).set(5)
        hist = registry.histogram("repro_lat_seconds", "Latency.",
                                  bounds=(0.1, 1.0))
        hist.record(0.05)
        hist.record(0.5)
        return registry

    def test_prometheus_text_structure(self):
        text = self._sample_registry().prometheus()
        assert "# HELP repro_events_total Events.\n" in text
        assert "# TYPE repro_events_total counter\n" in text
        assert 'repro_events_total{kind="ok"} 3\n' in text
        # Label values are escaped.
        assert 'kind="we\\"ird\\n\\\\"' in text
        # Histogram exposition is cumulative with +Inf and sum/count.
        assert 'repro_lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2\n' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2\n' in text
        assert "repro_lat_seconds_count 2\n" in text
        # track_high_water gauges emit a synthetic companion family.
        assert "repro_depth_high_water 5\n" in text

    def test_prometheus_text_parses(self):
        """Every non-comment line is `name{labels} value`."""
        line_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? '
            r'[^ ]+$')
        for line in self._sample_registry().prometheus().splitlines():
            if not line or line.startswith("#"):
                continue
            assert line_re.match(line), line

    def test_json_round_trips(self):
        document = json.loads(
            json.dumps(self._sample_registry().to_json()))
        families = {f["name"]: f for f in document["families"]}
        events = families["repro_events_total"]
        assert events["kind"] == "counter"
        by_kind = {s["labels"]["kind"]: s["value"]
                   for s in events["samples"]}
        assert by_kind["ok"] == 3
        hist = families["repro_lat_seconds"]["samples"][0]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.55)
        assert hist["buckets"][-1][0] == "inf"

    def test_empty_families_still_have_headers(self):
        registry = MetricsRegistry()
        registry.counter("repro_lonely_total", "No children.",
                         labels=("a",))
        text = registry.prometheus()
        assert "# HELP repro_lonely_total" in text
        assert "# TYPE repro_lonely_total counter" in text

    def test_scalar_values_flatten(self):
        scalars = self._sample_registry().scalar_values()
        assert scalars['repro_events_total{kind="ok"}'] == (3.0, True)
        value, monotonic = scalars["repro_depth"]
        assert value == 5.0 and not monotonic
        assert scalars["repro_lat_seconds_count"] == (2.0, True)

    def test_exposition_functions_accept_collect(self):
        snapshots = self._sample_registry().collect()
        assert to_prometheus(snapshots)
        assert to_json(snapshots)["families"]


class TestConcurrency:
    """N writer threads vs a concurrent exposition thread."""

    N_THREADS = 8
    PER_THREAD = 2500

    def test_totals_conserved_under_concurrent_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total",
                                   labels=("worker",))
        hist = registry.histogram("repro_work_seconds",
                                  bounds=(0.5, 1.0))
        gauge = registry.gauge("repro_inflight",
                               track_high_water=True)
        start = threading.Barrier(self.N_THREADS + 1)
        stop = threading.Event()

        def writer(index):
            child = counter.labels(f"w{index}")
            start.wait()
            for i in range(self.PER_THREAD):
                child.inc()
                hist.record(0.25 if i % 2 else 0.75)
                gauge.set(i % 7)

        def reader(errors):
            start.wait()
            while not stop.is_set():
                text = registry.prometheus()
                document = registry.to_json()
                if "# TYPE repro_hits_total counter" not in text:
                    errors.append("missing family header")
                if not document["families"]:
                    errors.append("empty json exposition")
                snap = hist.snapshot()
                if snap.count and not math.isclose(
                        snap.mean, snap.sum / snap.count):
                    errors.append("torn histogram read")

        errors = []
        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(self.N_THREADS)]
        exposition = threading.Thread(target=reader, args=(errors,))
        for thread in threads:
            thread.start()
        exposition.start()
        for thread in threads:
            thread.join()
        stop.set()
        exposition.join()

        assert not errors
        total = self.N_THREADS * self.PER_THREAD
        assert sum(child.value
                   for _, child in counter.children()) == total
        snap = hist.snapshot()
        assert snap.count == total
        assert sum(snap.counts) == total
        expected_sum = (total // 2) * 0.25 + (total - total // 2) * 0.75
        assert snap.sum == pytest.approx(expected_sum)
        assert gauge.labels().high_water == 6
        # The final exposition agrees with the counters.
        text = registry.prometheus()
        assert f"repro_work_seconds_count {total}\n" in text
