"""Shared helpers: small checkpointed + indexed archives to corrupt."""

import pytest

from repro.bgp.archive import RollingArchiveWriter
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix

PREFIXES = [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24"),
            Prefix.parse("10.0.2.0/24")]
VPS = ["vp0", "vp1", "vp2", "vp3"]
INTERVAL_S = 100.0
N_SEGMENTS = 6


def make_updates():
    """A deterministic stream filling N_SEGMENTS interval slots."""
    updates = []
    for tick in range(0, int(N_SEGMENTS * INTERVAL_S), 10):
        updates.append(BGPUpdate(
            VPS[tick % len(VPS)], float(tick),
            PREFIXES[tick % len(PREFIXES)],
            (65000 + tick % 3, 65100, 65200 + tick % 2)))
    return updates


def build_archive(directory):
    """Seal make_updates() into ``directory`` (checkpoint + indexes)."""
    writer = RollingArchiveWriter(str(directory), interval_s=INTERVAL_S,
                                  compress=False, checkpoint=True,
                                  index=True)
    writer.write_stream(make_updates())
    writer.close()
    assert len(writer.segments) == N_SEGMENTS
    return writer


@pytest.fixture
def archive_dir(tmp_path):
    directory = tmp_path / "archive"
    directory.mkdir()
    build_archive(directory)
    return directory
