"""Unit tests for the integrity primitives (repro.guard.integrity)."""

import hashlib
import json
import zlib

from repro.guard.integrity import (
    crc32_of,
    file_digests,
    mismatch_reason,
    record_intact,
    seal_record,
    verify_file,
)

PAYLOAD = b"the bytes that were sealed" * 100


def write_payload(tmp_path, data=PAYLOAD):
    path = tmp_path / "segment.bin"
    path.write_bytes(data)
    return str(path)


class TestFileDigests:
    def test_matches_reference_implementations(self, tmp_path):
        path = write_payload(tmp_path)
        digests = file_digests(path)
        assert digests.size == len(PAYLOAD)
        assert digests.crc32 \
            == f"{zlib.crc32(PAYLOAD) & 0xFFFFFFFF:08x}"
        assert digests.sha256 == hashlib.sha256(PAYLOAD).hexdigest()

    def test_empty_file(self, tmp_path):
        path = write_payload(tmp_path, b"")
        digests = file_digests(path)
        assert digests.size == 0
        assert digests.crc32 == "00000000"

    def test_crc32_of_agrees_with_file_digests(self, tmp_path):
        path = write_payload(tmp_path)
        assert crc32_of(PAYLOAD) == file_digests(path).crc32


class TestMismatchReason:
    def digests(self):
        return dict(size=len(PAYLOAD), crc32=crc32_of(PAYLOAD),
                    sha256=hashlib.sha256(PAYLOAD).hexdigest())

    def test_intact_bytes_pass(self):
        assert mismatch_reason(PAYLOAD, **self.digests()) is None

    def test_size_checked_first(self):
        # A truncated payload fails on size before any hashing.
        assert mismatch_reason(PAYLOAD[:-1], **self.digests()) == "size"

    def test_flip_caught_by_crc(self):
        flipped = bytearray(PAYLOAD)
        flipped[len(flipped) // 2] ^= 0xFF
        assert mismatch_reason(bytes(flipped), **self.digests()) \
            == "crc32"

    def test_sha_only_checked_when_given(self):
        # Wrong sha but matching size+crc: the hot path (no sha asked)
        # passes, the scrub path (sha asked) catches it.
        assert mismatch_reason(PAYLOAD, size=len(PAYLOAD),
                               crc32=crc32_of(PAYLOAD)) is None
        assert mismatch_reason(PAYLOAD, sha256="0" * 64) == "sha256"

    def test_absent_digests_verify_vacuously(self):
        # Pre-checksum archives carry no digests at all.
        assert mismatch_reason(PAYLOAD) is None


class TestVerifyFile:
    def test_intact_file_passes(self, tmp_path):
        path = write_payload(tmp_path)
        digests = file_digests(path)
        assert verify_file(path, size=digests.size,
                           crc32=digests.crc32,
                           sha256=digests.sha256) is None

    def test_missing_file(self, tmp_path):
        assert verify_file(str(tmp_path / "gone"), size=1) == "missing"

    def test_on_disk_flip_caught(self, tmp_path):
        path = write_payload(tmp_path)
        digests = file_digests(path)
        data = bytearray(PAYLOAD)
        data[0] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        assert verify_file(path, size=digests.size,
                           crc32=digests.crc32) == "crc32"

    def test_size_only_fast_path(self, tmp_path):
        # With neither hash asked for, nothing is read back.
        path = write_payload(tmp_path)
        assert verify_file(path, size=len(PAYLOAD)) is None
        assert verify_file(path, size=len(PAYLOAD) + 1) == "size"


class TestSealedRecords:
    def test_roundtrip(self):
        record = {"watermark": 1200.0, "kept": 10, "dropped": 5}
        sealed = seal_record(record)
        assert record_intact(sealed)
        assert {k: v for k, v in sealed.items() if k != "crc"} == record

    def test_tampered_value_detected(self):
        sealed = seal_record({"watermark": 1200.0, "kept": 10})
        sealed["kept"] = 11
        assert not record_intact(sealed)

    def test_sealing_is_deterministic(self):
        # Equal records seal to byte-identical lines regardless of
        # insertion order — the property the byte-identical-journal
        # chaos tests rely on.
        a = seal_record({"a": 1, "b": [2, 3]})
        b = seal_record({"b": [2, 3], "a": 1})
        assert json.dumps(a, sort_keys=True) \
            == json.dumps(b, sort_keys=True)

    def test_unsealed_records_pass_vacuously(self):
        # Journals written before sealing existed have no crc field.
        assert record_intact({"watermark": 0.0})

    def test_journal_line_flip_detected(self):
        line = json.dumps(seal_record({"scores": {"vp1": 0.5}}))
        flipped = line.replace("0.5", "0.7")
        assert not record_intact(json.loads(flipped))
