"""Tests for the scrubber and the quarantine manager (repro.guard)."""

import os

from repro.bgp.archive import RollingArchiveWriter
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.guard.manager import IntegrityGuard, quarantine_dir_for
from repro.guard.scrub import Scrubber, scrub_directory
from repro.pipeline.faults import corrupt_bitflip, corrupt_truncate
from repro.query.engine import DirectoryCatalog
from repro.query.index import load_index

from .conftest import N_SEGMENTS


def segment_paths(directory):
    return [s.path for s in
            DirectoryCatalog(str(directory), compressed=False).segments()]


class TestScrubDirectory:
    def test_clean_archive_is_clean(self, archive_dir):
        report = scrub_directory(str(archive_dir), compressed=False)
        assert report.clean
        assert report.checked == report.intact == N_SEGMENTS
        assert report.skipped == 0
        assert report.indexes_rebuilt == 0

    def test_detects_and_quarantines_rot(self, archive_dir):
        paths = segment_paths(archive_dir)
        corrupt_bitflip(paths[1])
        corrupt_truncate(paths[3])
        report = scrub_directory(str(archive_dir), compressed=False)
        assert not report.clean
        assert dict(report.quarantined) == {
            os.path.basename(paths[1]): "crc32",
            os.path.basename(paths[3]): "size",
        }
        qdir = quarantine_dir_for(str(archive_dir))
        for path in (paths[1], paths[3]):
            name = os.path.basename(path)
            assert not os.path.exists(path)
            assert os.path.exists(os.path.join(qdir, name))
            # The sidecar indexed the condemned bytes: it went too.
            assert not os.path.exists(path + ".idx")
            assert os.path.exists(os.path.join(qdir, name + ".idx"))

    def test_second_pass_skips_quarantined(self, archive_dir):
        paths = segment_paths(archive_dir)
        corrupt_bitflip(paths[0])
        guard = IntegrityGuard(str(archive_dir))
        first = scrub_directory(str(archive_dir), compressed=False,
                                guard=guard)
        assert len(first.quarantined) == 1
        second = scrub_directory(str(archive_dir), compressed=False,
                                 guard=guard)
        assert second.clean
        assert second.skipped == 1
        assert second.checked == N_SEGMENTS - 1

    def test_rebuilds_missing_and_torn_indexes(self, archive_dir):
        paths = segment_paths(archive_dir)
        os.remove(paths[0] + ".idx")                 # missing
        with open(paths[2] + ".idx", "r+b") as handle:  # torn mid-JSON
            handle.truncate(os.path.getsize(paths[2] + ".idx") // 2)
        report = scrub_directory(str(archive_dir), compressed=False)
        assert report.clean
        assert report.indexes_rebuilt == 2
        for path in (paths[0], paths[2]):
            assert load_index(path) is not None

    def test_pre_checksum_archive_falls_back_to_parse(self, tmp_path):
        # No checkpoint manifest: no digests to verify against, so the
        # scrub parses each segment instead.
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        prefix = Prefix.parse("10.0.0.0/24")
        writer.write_stream([
            BGPUpdate("vp1", float(t), prefix, (1, 2))
            for t in range(0, 300, 25)])
        writer.close()
        assert scrub_directory(str(tmp_path), compressed=False).clean
        with open(writer.segments[1].path, "wb") as handle:
            handle.write(b"\x00garbage")
        report = scrub_directory(str(tmp_path), compressed=False)
        assert [reason for _, reason in report.quarantined] == ["parse"]


class TestGuardState:
    def test_quarantine_state_survives_restart(self, archive_dir):
        paths = segment_paths(archive_dir)
        corrupt_bitflip(paths[2])
        scrub_directory(str(archive_dir), compressed=False)
        # A fresh guard (a restarted server) rebuilds the set from the
        # quarantine directory.
        guard = IntegrityGuard(str(archive_dir))
        assert guard.degraded
        assert guard.quarantined == (os.path.basename(paths[2]),)
        assert guard.is_quarantined(paths[2])
        assert guard.status()["degraded"]

    def test_double_quarantine_is_first_caller_wins(self, archive_dir):
        paths = segment_paths(archive_dir)
        guard = IntegrityGuard(str(archive_dir))
        assert guard.quarantine(paths[0], "crc32")
        assert not guard.quarantine(paths[0], "size")
        assert guard.quarantined == (os.path.basename(paths[0]),)


class TestScrubber:
    def test_step_rotates_through_live_segments(self, archive_dir):
        guard = IntegrityGuard(str(archive_dir))
        scrubber = Scrubber(str(archive_dir), guard, interval_s=60.0,
                            compressed=False)
        names = [scrubber.step() for _ in range(N_SEGMENTS)]
        assert sorted(names) == sorted(
            os.path.basename(p) for p in segment_paths(archive_dir))
        # The rotation wraps: the next step re-checks the first.
        assert scrubber.step() == names[0]

    def test_step_quarantines_and_then_skips(self, archive_dir):
        paths = segment_paths(archive_dir)
        corrupt_truncate(paths[0])
        guard = IntegrityGuard(str(archive_dir))
        scrubber = Scrubber(str(archive_dir), guard, interval_s=60.0,
                            compressed=False)
        scrubber.step()
        assert guard.quarantined == (os.path.basename(paths[0]),)
        # A full further rotation never revisits the condemned one.
        seen = {scrubber.step() for _ in range(N_SEGMENTS - 1)}
        assert os.path.basename(paths[0]) not in seen

    def test_background_thread_start_stop(self, archive_dir):
        guard = IntegrityGuard(str(archive_dir))
        scrubber = Scrubber(str(archive_dir), guard, interval_s=0.05,
                            compressed=False).start()
        try:
            import time
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                snapshot = guard.registry.to_json()
                swept = {
                    family["name"]: family["samples"][0]["value"]
                    for family in snapshot["families"]
                    if family["name"]
                    == "repro_guard_scrub_segments_total"
                }
                if swept.get("repro_guard_scrub_segments_total", 0) >= 2:
                    break
                time.sleep(0.02)
            assert swept.get("repro_guard_scrub_segments_total", 0) >= 2
        finally:
            scrubber.stop()
