"""Corruption chaos: rot is detected, quarantined, and never served.

The contract (docs/FAULTS.md): corrupt any scheduled subset of a
sealed archive's segments and the read side must (a) detect 100% of
the corruption, (b) quarantine it — file and sidecar moved aside,
metrics ticked, an ``integrity`` incident journaled — and (c) keep
answering queries from the intact remainder, with ``/readyz``
reporting ``degraded`` while ``/updates`` still serves.
"""

import json
import math
import os
import urllib.error
import urllib.request

import pytest

from repro.events import EventStore, journal_path_for
from repro.guard.manager import IntegrityGuard, quarantine_dir_for
from repro.guard.scrub import scrub_directory
from repro.pipeline.faults import (
    FaultInjector,
    FaultPlan,
    corrupt_bitflip,
    corrupt_torn_index,
)
from repro.query import QueryAPIServer, QueryEngine, QuerySpec
from repro.query.engine import DirectoryCatalog
from repro.query.index import load_index

from .conftest import INTERVAL_S, N_SEGMENTS, build_archive, make_updates


def get_json(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def keyed(updates):
    return [(u.time, u.vp, str(u.prefix)) for u in updates]


def expected_without_segments(corrupt_indexes):
    """The full stream minus updates whose segment was condemned."""
    lost = {int(index) for index in corrupt_indexes}
    return [u for u in make_updates()
            if int(u.time // INTERVAL_S) not in lost]


def gauge_value(registry, name):
    for family in registry.to_json()["families"]:
        if family["name"] == name:
            return family["samples"][0]["value"]
    return None


class TestQuarantineServing:
    """Two segments rot; queries answer from the intact four."""

    CORRUPT = (1, 3)    # bitflip=archive@2 / truncate=archive@4

    @pytest.fixture
    def degraded(self, tmp_path):
        directory = tmp_path / "victim"
        directory.mkdir()
        build_archive(directory)
        segments = DirectoryCatalog(str(directory),
                                    compressed=False).segments()
        injector = FaultInjector(FaultPlan.parse(
            "bitflip=archive@2,truncate=archive@4"))
        applied = injector.apply_archive_corruption(segments)
        assert [segments.index(next(s for s in segments
                                    if s.path == path))
                for _, path in applied] == list(self.CORRUPT)
        store = EventStore(journal_path_for(str(directory)))
        guard = IntegrityGuard(str(directory), events=store)
        engine = QueryEngine(str(directory), compressed=False,
                             guard=guard)
        server = QueryAPIServer(engine, guard=guard).start()
        corrupted = tuple(os.path.basename(segments[i].path)
                          for i in self.CORRUPT)
        yield server, engine, guard, store, directory, corrupted
        server.stop()
        engine.close()

    def test_served_answers_equal_the_intact_remainder(self, degraded):
        server, engine, guard, _, _, corrupted = degraded
        status, body = get_json(server.url + "/updates")
        assert status == 200
        want = expected_without_segments(self.CORRUPT)
        assert [(u["time"], u["vp"], u["prefix"])
                for u in body["updates"]] == keyed(want)
        # The full-range query touched every segment: both corrupted
        # ones are now condemned, none of their records were served.
        assert guard.quarantined == tuple(sorted(corrupted))

    def test_quarantine_moves_file_and_sidecar(self, degraded):
        server, _, _, _, directory, corrupted = degraded
        get_json(server.url + "/updates")
        qdir = quarantine_dir_for(str(directory))
        for name in corrupted:
            assert not os.path.exists(os.path.join(str(directory), name))
            assert os.path.exists(os.path.join(qdir, name))
            assert os.path.exists(os.path.join(qdir, name + ".idx"))

    def test_readyz_reports_degraded_while_serving(self, degraded):
        server, _, _, _, _, corrupted = degraded
        status, body = get_json(server.url + "/readyz")
        assert status == 200 and body["status"] == "ok"
        get_json(server.url + "/updates")     # trips the quarantine
        status, body = get_json(server.url + "/readyz")
        assert status == 200                  # degraded, NOT down
        assert body["status"] == "degraded"
        assert body["quarantined"] == sorted(corrupted)
        # ...and /updates still answers next to it.
        status, body = get_json(server.url + "/updates?limit=1")
        assert status == 200 and body["count"] == 1

    def test_status_and_metrics_surface_the_quarantine(self, degraded):
        server, _, guard, _, _, corrupted = degraded
        get_json(server.url + "/updates")
        status, body = get_json(server.url + "/status")
        assert status == 200
        assert body["guard"]["degraded"] is True
        assert body["guard"]["quarantined"] == sorted(corrupted)
        assert gauge_value(guard.registry,
                           "repro_guard_quarantined_segments") == 2.0

    def test_integrity_incidents_reach_the_event_journal(self, degraded):
        server, _, _, store, directory, corrupted = degraded
        get_json(server.url + "/updates")
        for name in corrupted:
            event = store.get(f"guard-{name}")
            assert event is not None
            assert event.type == "integrity"
            assert event.evidence[0].extra["segment"] == name
        # The incidents are durable: a fresh store reloads them.
        reloaded = EventStore(journal_path_for(str(directory)))
        reloaded.load()
        assert {f"guard-{name}" for name in corrupted} \
            <= {event.id for event in reloaded.events()}

    def test_repeat_queries_stay_stable(self, degraded):
        server, _, _, _, _, _ = degraded
        first = get_json(server.url + "/updates")
        second = get_json(server.url + "/updates")
        assert first == second


class TestScrubDetectsEverything:
    def test_total_rot_is_fully_detected_and_still_serves(self, tmp_path):
        """Corrupt EVERY segment: 100% detection, the API stays up."""
        directory = tmp_path / "rotten"
        directory.mkdir()
        build_archive(directory)
        segments = DirectoryCatalog(str(directory),
                                    compressed=False).segments()
        spec = ",".join(
            f"{'bitflip' if i % 2 else 'truncate'}=archive@{i + 1}"
            for i in range(N_SEGMENTS))
        FaultInjector(FaultPlan.parse(spec)) \
            .apply_archive_corruption(segments)
        guard = IntegrityGuard(str(directory))
        report = scrub_directory(str(directory), compressed=False,
                                 guard=guard)
        assert {name for name, _ in report.quarantined} \
            == {os.path.basename(s.path) for s in segments}
        assert report.intact == 0
        with QueryEngine(str(directory), compressed=False,
                         guard=guard) as engine, \
                QueryAPIServer(engine, guard=guard) as server:
            status, body = get_json(server.url + "/updates")
            assert status == 200 and body["count"] == 0
            status, body = get_json(server.url + "/readyz")
            assert status == 200 and body["status"] == "degraded"


class TestTornIndexHeals:
    def test_torn_sidecar_is_rebuilt_not_quarantined(self, tmp_path):
        directory = tmp_path / "torn"
        directory.mkdir()
        build_archive(directory)
        segments = DirectoryCatalog(str(directory),
                                    compressed=False).segments()
        victim = segments[2].path
        corrupt_torn_index(victim)
        assert load_index(victim) is None     # the tear is real
        guard = IntegrityGuard(str(directory))
        with QueryEngine(str(directory), compressed=False,
                         guard=guard) as engine:
            got = engine.query(QuerySpec())
        # The data is intact, so the answer is complete...
        assert keyed(got) == keyed(make_updates())
        # ...nothing was condemned...
        assert not guard.degraded
        # ...and the sidecar healed (rebuilt and persisted).
        assert load_index(victim) is not None

    def test_scrub_heals_torn_sidecars_too(self, tmp_path):
        directory = tmp_path / "torn"
        directory.mkdir()
        build_archive(directory)
        segments = DirectoryCatalog(str(directory),
                                    compressed=False).segments()
        corrupt_torn_index(segments[0].path)
        report = scrub_directory(str(directory), compressed=False)
        assert report.clean
        assert report.indexes_rebuilt == 1
        assert load_index(segments[0].path) is not None


class TestSealHookCorruption:
    def test_live_sealed_segment_rots_and_is_caught(self, tmp_path):
        """The injector corrupts the N-th segment the moment it seals —
        after its digests landed in the manifest — and the read path
        catches it anyway."""
        from repro.bgp.archive import RollingArchiveWriter

        injector = FaultInjector(FaultPlan.parse("bitflip=archive@2"))
        writer = RollingArchiveWriter(str(tmp_path),
                                      interval_s=INTERVAL_S,
                                      compress=False, checkpoint=True,
                                      index=True)
        wrapped = injector.wrap_archive(writer)
        wrapped.write_stream(make_updates())
        wrapped.close()
        assert any("bitflip archive segment 2" in line
                   for line in injector.log)
        guard = IntegrityGuard(str(tmp_path))
        with QueryEngine(str(tmp_path), compressed=False,
                         guard=guard) as engine:
            got = engine.query(QuerySpec(start=0.0, end=math.inf))
        condemned = os.path.basename(writer.segments[1].path)
        assert guard.quarantined == (condemned,)
        assert keyed(got) == keyed(expected_without_segments([1]))
