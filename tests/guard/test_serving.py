"""Unit tests for the overload-protection primitives (repro.guard.serving)."""

import threading
import time

import pytest

from repro.guard.serving import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    Overloaded,
)
from repro.telemetry import MetricsRegistry


def shed_counts(registry):
    for family in registry.to_json()["families"]:
        if family["name"] == "repro_guard_shed_total":
            return {
                sample["labels"]["reason"]: sample["value"]
                for sample in family["samples"]
            }
    return {}


class TestAdmissionController:
    def test_admits_up_to_max_concurrent(self):
        gate = AdmissionController(max_concurrent=2, max_queue=0)
        with gate.admit():
            with gate.admit():
                assert gate.active == 2
                with pytest.raises(Overloaded) as excinfo:
                    with gate.admit():
                        pass
                assert excinfo.value.reason == "queue_full"
        assert gate.active == 0

    def test_slot_reusable_after_release(self):
        gate = AdmissionController(max_concurrent=1, max_queue=0)
        with gate.admit():
            pass
        with gate.admit():
            assert gate.active == 1

    def test_queued_request_gets_the_freed_slot(self):
        gate = AdmissionController(max_concurrent=1, max_queue=1,
                                   queue_timeout_s=2.0)
        holding = threading.Event()
        release = threading.Event()
        outcome = []

        def holder():
            with gate.admit():
                holding.set()
                release.wait(5.0)

        def waiter():
            holding.wait(5.0)
            try:
                with gate.admit():
                    outcome.append("admitted")
            except Overloaded as exc:
                outcome.append(exc.reason)

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        holding.wait(5.0)
        time.sleep(0.05)         # let the waiter enter the queue
        release.set()
        for thread in threads:
            thread.join(5.0)
        assert outcome == ["admitted"]

    def test_impatient_queue_times_out(self):
        gate = AdmissionController(max_concurrent=1, max_queue=1,
                                   queue_timeout_s=0.05)
        release = threading.Event()
        started = threading.Event()

        def holder():
            with gate.admit():
                started.set()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        started.wait(5.0)
        before = time.monotonic()
        with pytest.raises(Overloaded) as excinfo:
            with gate.admit():
                pass
        waited = time.monotonic() - before
        release.set()
        thread.join(5.0)
        assert excinfo.value.reason == "queue_timeout"
        assert waited < 1.0      # shed fast, not a full request timeout

    def test_drain_refuses_and_wakes_waiters(self):
        gate = AdmissionController(max_concurrent=1, max_queue=0)
        gate.drain()
        assert gate.draining
        with pytest.raises(Overloaded) as excinfo:
            with gate.admit():
                pass
        assert excinfo.value.reason == "draining"

    def test_wait_idle(self):
        gate = AdmissionController(max_concurrent=2, max_queue=0)
        assert gate.wait_idle(timeout_s=0.1)
        release = threading.Event()

        def holder():
            with gate.admit():
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        time.sleep(0.02)
        assert not gate.wait_idle(timeout_s=0.05)
        release.set()
        assert gate.wait_idle(timeout_s=5.0)
        thread.join(5.0)

    def test_shed_reasons_counted(self):
        registry = MetricsRegistry()
        gate = AdmissionController(max_concurrent=1, max_queue=0,
                                   registry=registry)
        with gate.admit():
            with pytest.raises(Overloaded):
                with gate.admit():
                    pass
        gate.shed("breaker")
        counts = shed_counts(registry)
        assert counts["queue_full"] == 1
        assert counts["breaker"] == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, by):
        self.now += by


class TestCircuitBreaker:
    def breaker(self, threshold=3, reset=5.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold,
                              reset_after_s=reset, clock=clock), clock

    def test_closed_until_threshold(self):
        breaker, _ = self.breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure("/updates")
            assert breaker.allow("/updates")
        breaker.record_failure("/updates")
        assert not breaker.allow("/updates")
        assert breaker.open_endpoints() == ["/updates"]

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.breaker(threshold=3)
        breaker.record_failure("/updates")
        breaker.record_failure("/updates")
        breaker.record_success("/updates")
        breaker.record_failure("/updates")
        breaker.record_failure("/updates")
        assert breaker.allow("/updates")   # streak broken, still closed

    def test_breakers_are_per_endpoint(self):
        breaker, _ = self.breaker(threshold=1)
        breaker.record_failure("/updates")
        assert not breaker.allow("/updates")
        assert breaker.allow("/vps")

    def test_half_open_single_probe(self):
        breaker, clock = self.breaker(threshold=1, reset=5.0)
        breaker.record_failure("/updates")
        assert not breaker.allow("/updates")
        clock.advance(5.0)
        assert breaker.allow("/updates")       # one probe gets through
        assert not breaker.allow("/updates")   # concurrent calls don't

    def test_probe_success_closes(self):
        breaker, clock = self.breaker(threshold=1, reset=5.0)
        breaker.record_failure("/updates")
        clock.advance(5.0)
        assert breaker.allow("/updates")
        breaker.record_success("/updates")
        assert breaker.allow("/updates")
        assert breaker.open_endpoints() == []

    def test_probe_failure_restarts_the_cooldown(self):
        breaker, clock = self.breaker(threshold=1, reset=5.0)
        breaker.record_failure("/updates")
        clock.advance(5.0)
        assert breaker.allow("/updates")
        breaker.record_failure("/updates")
        assert not breaker.allow("/updates")
        assert breaker.retry_after("/updates") == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.allow("/updates")       # a fresh probe

    def test_retry_after_counts_down(self):
        breaker, clock = self.breaker(threshold=1, reset=5.0)
        assert breaker.retry_after("/updates") == 0.0
        breaker.record_failure("/updates")
        clock.advance(2.0)
        assert breaker.retry_after("/updates") == pytest.approx(3.0)


class TestDeadline:
    def test_fresh_deadline_passes(self):
        deadline = Deadline(30.0)
        assert not deadline.expired()
        assert deadline.remaining() > 29.0
        deadline.check("decoding")     # must not raise

    def test_expired_deadline_raises(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="mid decode"):
            deadline.check("mid decode")
