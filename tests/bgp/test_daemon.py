"""Tests for the daemon capacity model (Table 1)."""

import pytest

from repro.bgp.daemon import (
    AVG_RATE_PER_HOUR,
    P99_RATE_PER_HOUR,
    per_update_cost,
    simulate_loss,
    steady_state_loss,
    table1_grid,
)


class TestPerUpdateCost:
    def test_filtering_is_cheaper(self):
        """§8: daemons process more updates with filters because less
        data is written to disk."""
        assert per_update_cost(True) < per_update_cost(False)

    def test_cost_scales_with_retention(self):
        assert per_update_cost(True, retain_fraction=0.5) > \
            per_update_cost(True, retain_fraction=0.05)


class TestSteadyState:
    def test_no_peers_no_loss(self):
        assert steady_state_loss(0, AVG_RATE_PER_HOUR, True).loss_fraction == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            steady_state_loss(-1, AVG_RATE_PER_HOUR, True)

    def test_loss_monotone_in_peers(self):
        losses = [steady_state_loss(n, P99_RATE_PER_HOUR, False).loss_fraction
                  for n in (100, 1000, 10000)]
        assert losses == sorted(losses)


class TestTable1Pattern:
    """The qualitative cell pattern of Table 1 must be reproduced."""

    def test_filters_avg_rate_copes_at_10k(self):
        assert steady_state_loss(10000, AVG_RATE_PER_HOUR, True).copes

    def test_filters_p99_copes_at_1k(self):
        assert steady_state_loss(1000, P99_RATE_PER_HOUR, True).copes

    def test_filters_p99_loses_at_10k(self):
        assert not steady_state_loss(10000, P99_RATE_PER_HOUR, True).copes

    def test_no_filters_avg_loses_at_10k(self):
        """Paper reports 39% loss; we require the same order of magnitude."""
        result = steady_state_loss(10000, AVG_RATE_PER_HOUR, False)
        assert 0.25 < result.loss_fraction < 0.55

    def test_no_filters_p99_loses_at_1k(self):
        """Paper reports 32% loss at 1k peers, p99 rate, no filters."""
        result = steady_state_loss(1000, P99_RATE_PER_HOUR, False)
        assert 0.2 < result.loss_fraction < 0.45

    def test_no_filters_p99_high_at_10k(self):
        result = steady_state_loss(10000, P99_RATE_PER_HOUR, False)
        assert result.label == "high"

    def test_all_cells_cope_at_100_peers(self):
        for filtered in (True, False):
            for rate in (AVG_RATE_PER_HOUR, P99_RATE_PER_HOUR):
                assert steady_state_loss(100, rate, filtered).copes

    def test_grid_has_12_cells(self):
        assert len(table1_grid()) == 12


class TestSimulatedLoss:
    def test_underloaded_system_loses_nothing(self):
        assert simulate_loss(100, AVG_RATE_PER_HOUR, True, seed=1,
                             duration_s=5.0) == 0.0

    def test_overloaded_system_loses_updates(self):
        loss = simulate_loss(10000, P99_RATE_PER_HOUR, False, seed=1,
                             duration_s=2.0)
        assert loss > 0.5

    def test_simulation_close_to_analytic_when_saturated(self):
        analytic = steady_state_loss(10000, AVG_RATE_PER_HOUR, False)
        simulated = simulate_loss(10000, AVG_RATE_PER_HOUR, False, seed=7,
                                  duration_s=5.0)
        assert abs(simulated - analytic.loss_fraction) < 0.12

    def test_zero_rate(self):
        assert simulate_loss(10, 0.0, True, seed=1) == 0.0

    def test_arrival_past_horizon_not_counted(self):
        """Regression: the arrival landing past ``duration_s`` used to
        inflate the arrival total, biasing short-duration runs."""
        import random

        peers, rate_per_hour, duration_s, seed = 1, 3600.0, 8.0, 5
        # Replay the generator to count the arrivals that genuinely
        # land inside the window.
        rng = random.Random(seed)
        arrivals_in_window = 0
        now = 0.0
        while True:
            now += rng.expovariate(peers * rate_per_hour / 3600.0)
            if now >= duration_s:
                break
            arrivals_in_window += 1
        assert arrivals_in_window >= 2

        # With a near-zero CPU and no queue, the first arrival grabs
        # the server forever and every later in-window arrival is lost,
        # so the loss fraction exposes the denominator exactly.
        loss = simulate_loss(peers, rate_per_hour, True,
                             duration_s=duration_s, capacity=1e-9,
                             queue_capacity=1, seed=seed)
        # One served + one queued; the rest of the window is lost.
        expected = (arrivals_in_window - 2) / arrivals_in_window
        assert loss == pytest.approx(expected)

    def test_empty_window_loses_nothing(self):
        """A window shorter than the first inter-arrival gap sees no
        arrivals at all and must report zero loss, not divide by the
        phantom past-horizon arrival."""
        assert simulate_loss(1, 3600.0, True, duration_s=1e-9,
                             seed=0) == 0.0
