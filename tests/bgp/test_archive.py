"""Tests for the rolling archive writer."""

import os

import pytest

from repro.bgp.archive import (
    RIS_INTERVAL_S,
    RollingArchiveWriter,
)
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix

P1 = Prefix.parse("10.0.0.0/24")


def upd(t, vp="vp1"):
    return BGPUpdate(vp, t, P1, (1, 2))


class TestRollingWriter:
    def test_flush_on_interval_crossing(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        assert writer.write(upd(10.0)) is None
        assert writer.write(upd(50.0)) is None
        segment = writer.write(upd(150.0))   # crosses into slot 1
        assert segment is not None
        assert segment.start == 0.0 and segment.end == 100.0
        assert segment.count == 2
        assert os.path.exists(segment.path)

    def test_close_flushes_tail(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        writer.write(upd(10.0))
        segment = writer.close()
        assert segment is not None and segment.count == 1
        assert writer.close() is None    # idempotent

    def test_out_of_order_rejected(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        writer.write(upd(50.0))
        with pytest.raises(ValueError):
            writer.write(upd(10.0))

    def test_invalid_interval(self, tmp_path):
        with pytest.raises(ValueError):
            RollingArchiveWriter(str(tmp_path), interval_s=0.0)

    def test_write_stream_many_segments(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        stream = [upd(float(t)) for t in range(0, 500, 20)]
        writer.write_stream(stream)
        writer.close()
        assert len(writer.segments) == 5
        total = sum(s.count for s in writer.segments)
        assert total == len(stream)

    def test_segment_naming(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=300.0)
        writer.write(upd(450.0))
        segment = writer.close()
        assert "updates.000000000300-000000000600" in segment.path

    def test_uncompressed_mode(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        writer.write(upd(1.0))
        segment = writer.close()
        assert segment.path.endswith(".mrt")


class TestConsumerSide:
    @pytest.fixture
    def published(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        writer.write_stream([upd(float(t)) for t in range(0, 400, 25)])
        writer.close()
        return writer

    def test_segment_for(self, published):
        segment = published.segment_for(150.0)
        assert segment is not None
        assert segment.start == 100.0

    def test_segment_for_unpublished_time(self, published):
        assert published.segment_for(9999.0) is None

    def test_read_range_exact(self, published):
        updates = published.read_range(100.0, 300.0)
        assert all(100.0 <= u.time < 300.0 for u in updates)
        assert len(updates) == 8

    def test_read_range_partial_segment(self, published):
        updates = published.read_range(110.0, 160.0)
        assert [u.time for u in updates] == [125.0, 150.0]

    def test_roundtrip_everything(self, published):
        updates = published.read_range(0.0, 1e9)
        assert len(updates) == 16

    def test_default_interval_is_ris(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path))
        assert writer.interval_s == RIS_INTERVAL_S


class TestSparseAndEdgeCases:
    """Archive behaviour around empty slots and boundaries."""

    @pytest.fixture
    def sparse(self, tmp_path):
        # Updates skip entire interval slots: slots 0, 7 and 31 are
        # published, everything between stays empty.
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        writer.write_stream([upd(10.0), upd(50.0),
                             upd(750.0), upd(3150.0)])
        writer.close()
        return writer

    def test_skipped_slots_produce_no_segments(self, sparse):
        assert [s.start for s in sparse.segments] == [0.0, 700.0, 3100.0]

    def test_segment_for_inside_gap(self, sparse):
        assert sparse.segment_for(350.0) is None
        assert sparse.segment_for(2999.0) is None

    def test_segment_for_boundaries(self, sparse):
        assert sparse.segment_for(700.0).start == 700.0
        assert sparse.segment_for(799.9).start == 700.0
        assert sparse.segment_for(800.0) is None
        assert sparse.segment_for(-5.0) is None

    def test_read_range_over_gap(self, sparse):
        assert [u.time for u in sparse.read_range(0.0, 3200.0)] == \
            [10.0, 50.0, 750.0, 3150.0]
        assert sparse.read_range(100.0, 700.0) == []

    def test_close_on_empty_writer(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        assert writer.close() is None
        assert writer.segments == []
        assert writer.read_range(0.0, 1e9) == []
        assert writer.segment_for(0.0) is None

    def test_compressed_roundtrip_across_boundary(self, tmp_path):
        """read_range spanning a segment boundary, bz2 on."""
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=True)
        times = [80.0, 95.0, 105.0, 120.0]
        writer.write_stream([upd(t) for t in times])
        writer.close()
        assert len(writer.segments) == 2
        assert all(s.path.endswith(".mrt.bz2") for s in writer.segments)
        spanning = writer.read_range(90.0, 110.0)
        assert [u.time for u in spanning] == [95.0, 105.0]
        assert [u.time for u in writer.read_range(0.0, 200.0)] == times


class TestRIBDumps:
    def test_rib_dump_roundtrip(self, tmp_path):
        from repro.bgp.rib import Route
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        ribs = {
            "vp1": [Route(P1, (1, 2), frozenset({(1, 5)}), 10.0)],
            "vp2": [Route(P1, (3, 2), frozenset(), 10.0)],
        }
        path = writer.write_rib_dump(28800.0, ribs)
        assert "rib.000000028800" in path
        replayed = writer.read_rib_dump(path)
        assert replayed == ribs

    def test_rib_dump_uncompressed(self, tmp_path):
        from repro.bgp.rib import Route
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        path = writer.write_rib_dump(0.0, {"vp1": [Route(P1, (1, 2))]})
        assert path.endswith(".mrt")
        assert writer.read_rib_dump(path)["vp1"][0].as_path == (1, 2)

    def test_empty_rib_dump(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        path = writer.write_rib_dump(0.0, {})
        assert writer.read_rib_dump(path) == {}


class TestCheckpointRecovery:
    def checkpointed(self, tmp_path):
        return RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                    compress=False, checkpoint=True)

    def test_checkpoint_written_on_flush(self, tmp_path):
        import json
        writer = self.checkpointed(tmp_path)
        writer.write(upd(10.0))
        writer.write(upd(150.0))             # flushes slot 0
        state = json.load(open(writer.checkpoint_path))
        assert state["watermark"] == 100.0
        assert len(state["segments"]) == 1
        assert writer.durable_watermark == 100.0

    def test_recover_deletes_torn_segment(self, tmp_path):
        writer = self.checkpointed(tmp_path)
        writer.write(upd(10.0))
        writer.write(upd(150.0))             # slot 0 is durable
        # Simulate a crash mid-write: a segment file exists on disk
        # that the manifest never acknowledged.
        torn = tmp_path / "updates.000000000100-000000000200.mrt"
        torn.write_bytes(b"torn garbage from a crashed writer")
        fresh = self.checkpointed(tmp_path)
        report = fresh.recover()
        assert report.torn_removed == (torn.name,)
        assert not torn.exists()
        assert report.watermark == 100.0
        assert report.segments == 1
        assert len(fresh.read_range(0.0, 1e9)) == 1

    def test_recover_drops_corrupt_manifested_segment(self, tmp_path):
        writer = self.checkpointed(tmp_path)
        writer.write(upd(10.0))
        writer.write(upd(150.0))
        writer.write(upd(250.0))             # slot 1 durable too
        # Corrupt the second durable file after the fact (disk rot).
        second = writer.segments[1].path
        with open(second, "wb") as handle:
            handle.write(b"\x00bad")
        fresh = self.checkpointed(tmp_path)
        report = fresh.recover()
        assert report.watermark == 100.0     # truncated to segment 1
        assert report.segments == 1

    def test_recover_discards_pending_and_rewinds(self, tmp_path):
        writer = self.checkpointed(tmp_path)
        writer.write(upd(10.0))
        writer.write(upd(150.0))
        writer.write(upd(160.0))             # pending in slot 1
        report = writer.recover()
        assert report.lost_pending == 2
        # The writer rewound to the watermark: a time at (or past) it
        # is acceptable again even though later times were seen.
        writer.write(upd(100.0))
        segment = writer.write(upd(250.0))
        assert segment is not None and segment.start == 100.0

    def test_recover_requires_checkpointing(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        with pytest.raises(RuntimeError):
            writer.recover()

    def test_recover_empty_directory(self, tmp_path):
        report = self.checkpointed(tmp_path).recover()
        assert report.watermark is None
        assert report.segments == 0
        assert report.torn_removed == ()

    def test_resume_reproduces_uninterrupted_archive(self, tmp_path):
        """Write-crash-recover-rewrite equals a clean run exactly."""
        updates = [upd(float(t) * 30.0) for t in range(20)]
        clean_dir = tmp_path / "clean"
        clean = RollingArchiveWriter(str(clean_dir), interval_s=100.0,
                                     compress=False, checkpoint=True)
        clean.write_stream(updates)
        clean.close()

        crash_dir = tmp_path / "crash"
        crashy = RollingArchiveWriter(str(crash_dir), interval_s=100.0,
                                      compress=False, checkpoint=True)
        crashy.write_stream(updates[:13])    # crash mid-stream
        resumed = RollingArchiveWriter(str(crash_dir), interval_s=100.0,
                                       compress=False, checkpoint=True)
        watermark = resumed.recover().watermark
        resumed.write_stream(
            [u for u in updates if u.time >= watermark])
        resumed.close()
        assert [u.time for u in resumed.read_range(0.0, 1e9)] \
            == [u.time for u in clean.read_range(0.0, 1e9)]


class TestManifestDigests:
    """Seal-time fingerprints in CHECKPOINT.json (repro.guard)."""

    def checkpointed(self, tmp_path):
        return RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                    compress=False, checkpoint=True)

    def three_durable_segments(self, tmp_path):
        writer = self.checkpointed(tmp_path)
        writer.write_stream([upd(float(t)) for t in range(0, 300, 20)])
        writer.write(upd(350.0))            # seals slot 2; slot 3 open
        assert len(writer.segments) == 3
        return writer

    def test_digests_recorded_and_match_the_files(self, tmp_path):
        import json
        from repro.guard.integrity import file_digests

        writer = self.three_durable_segments(tmp_path)
        state = json.load(open(writer.checkpoint_path))
        for entry, segment in zip(state["segments"], writer.segments):
            digests = file_digests(segment.path)
            assert entry["size"] == digests.size == segment.size
            assert entry["crc32"] == digests.crc32 == segment.crc32
            assert entry["sha256"] == digests.sha256 == segment.sha256

    def test_recover_catches_bitflip_in_middle_segment(self, tmp_path):
        """Silent rot in the MIDDLE of the manifest: the file length
        and record framing survive a one-byte flip, so only the
        recorded CRC can catch it — and recovery must rewind to before
        the damage, not trust the (intact) later segments built on a
        broken history."""
        from repro.pipeline.faults import corrupt_bitflip

        writer = self.three_durable_segments(tmp_path)
        middle = writer.segments[1].path
        size_before = os.path.getsize(middle)
        corrupt_bitflip(middle)
        assert os.path.getsize(middle) == size_before  # same length

        fresh = self.checkpointed(tmp_path)
        report = fresh.recover()
        assert report.watermark == 100.0    # end of the intact prefix
        assert report.segments == 1
        # The corrupt file and everything after it are deleted: the
        # manifest is the source of truth and it now ends at slot 0.
        assert not os.path.exists(middle)
        assert len(fresh.read_range(0.0, 1e9)) == 5
        # The archive is writable again from the durable watermark.
        fresh.write(upd(110.0))
        segment = fresh.write(upd(250.0))
        assert segment is not None and segment.start == 100.0

    def test_recover_passes_intact_digested_archive(self, tmp_path):
        writer = self.three_durable_segments(tmp_path)
        report = self.checkpointed(tmp_path).recover()
        assert report.watermark == 300.0
        assert report.segments == len(writer.segments)
        assert report.torn_removed == ()


class TestReadRangePushdown:
    """The prefix=/vp= filters must be exactly a post-hoc filter of
    the historical unfiltered scan."""

    def multi_vp_writer(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        prefixes = [P1, Prefix.parse("10.0.1.0/24"),
                    Prefix.parse("10.0.2.0/24")]
        for t in range(0, 500, 7):
            writer.write(BGPUpdate(f"vp{t % 3}", float(t),
                                   prefixes[t % len(prefixes)], (1, 2)))
        writer.close()
        return writer, prefixes

    def test_prefix_pushdown_equals_post_filter(self, tmp_path):
        writer, prefixes = self.multi_vp_writer(tmp_path)
        everything = writer.read_range(0.0, 1e9)
        for prefix in prefixes:
            assert writer.read_range(0.0, 1e9, prefix=prefix) \
                == [u for u in everything if u.prefix == prefix]

    def test_vp_pushdown_equals_post_filter(self, tmp_path):
        writer, _ = self.multi_vp_writer(tmp_path)
        everything = writer.read_range(0.0, 1e9)
        for vp in ("vp0", "vp1", "vp2", "vp-none"):
            assert writer.read_range(0.0, 1e9, vp=vp) \
                == [u for u in everything if u.vp == vp]

    def test_combined_pushdown_with_time_window(self, tmp_path):
        writer, prefixes = self.multi_vp_writer(tmp_path)
        window = writer.read_range(100.0, 400.0)
        assert writer.read_range(100.0, 400.0, prefix=prefixes[1],
                                 vp="vp1") \
            == [u for u in window
                if u.prefix == prefixes[1] and u.vp == "vp1"]

    def test_no_filter_unchanged(self, tmp_path):
        writer, _ = self.multi_vp_writer(tmp_path)
        assert writer.read_range(0.0, 1e9) \
            == writer.read_range(0.0, 1e9, prefix=None, vp=None)


class TestStreamingRIB:
    def test_iter_equals_read(self, tmp_path):
        from repro.bgp.rib import Route
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0)
        ribs = {
            f"vp{i}": [Route(P1, (i, 2), frozenset(), float(t))
                       for t in range(5)]
            for i in range(4)
        }
        path = writer.write_rib_dump(100.0, ribs)
        streamed = {}
        for record in writer.iter_rib_dump(path):
            streamed.setdefault(record.vp, []).append(record.route)
        assert streamed == writer.read_rib_dump(path) == ribs


class TestIndexRecovery:
    def test_recover_deletes_orphaned_indexes(self, tmp_path):
        from repro.bgp.archive import INDEX_SUFFIX
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False, checkpoint=True,
                                      index=True)
        writer.write_stream([upd(10.0), upd(150.0), upd(250.0)])
        # Two segments are durable and indexed; the open interval is
        # not.  Simulate a torn seal: segment file + index on disk but
        # absent from the manifest.
        torn = os.path.join(str(tmp_path),
                            "updates.000000000300-000000000400.mrt")
        with open(torn, "wb"):
            pass
        with open(torn + INDEX_SUFFIX, "w") as handle:
            handle.write("{}")

        recovered = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                         compress=False, checkpoint=True,
                                         index=True)
        report = recovered.recover()
        assert report.segments == 2
        assert os.path.basename(torn) in report.torn_removed
        assert os.path.basename(torn) + INDEX_SUFFIX \
            in report.index_orphans
        assert not os.path.exists(torn + INDEX_SUFFIX)
        # Indexes of surviving segments are untouched.
        for segment in recovered.segments:
            assert os.path.exists(segment.path + INDEX_SUFFIX)


class TestSealListeners:
    def test_multiple_listeners_fire_in_order(self, tmp_path):
        fired = []
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        writer.add_seal_listener(
            lambda seg, build: fired.append(("a", seg.start)))
        writer.add_seal_listener(
            lambda seg, build: fired.append(("b", seg.start)))
        writer.write_stream([upd(10.0), upd(150.0)])
        writer.close()
        assert fired == [("a", 0.0), ("b", 0.0), ("a", 100.0),
                         ("b", 100.0)]

    def test_ctor_hook_still_works(self, tmp_path):
        fired = []
        writer = RollingArchiveWriter(
            str(tmp_path), interval_s=100.0, compress=False,
            on_seal=lambda seg, build: fired.append(seg.count))
        writer.write_stream([upd(10.0), upd(150.0)])
        writer.close()
        assert fired == [1, 1]

    def test_on_seal_property_compat(self, tmp_path):
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        assert writer.on_seal is None
        first = lambda seg, build: None       # noqa: E731
        second = lambda seg, build: None      # noqa: E731
        extra = lambda seg, build: None       # noqa: E731
        writer.on_seal = first
        writer.add_seal_listener(extra)
        assert writer.on_seal is first
        assert writer.seal_listeners == (first, extra)
        # Replacing via the legacy property keeps later subscribers.
        writer.on_seal = second
        assert writer.seal_listeners == (second, extra)
        writer.on_seal = None
        assert writer.seal_listeners == (extra,)

    def test_remove_seal_listener(self, tmp_path):
        fired = []
        writer = RollingArchiveWriter(str(tmp_path), interval_s=100.0,
                                      compress=False)
        hook = lambda seg, build: fired.append(seg.start)  # noqa: E731
        writer.add_seal_listener(hook)
        writer.remove_seal_listener(hook)
        writer.remove_seal_listener(hook)     # absent: no-op
        writer.write_stream([upd(10.0), upd(150.0)])
        writer.close()
        assert fired == []
