"""Tests for repro.bgp.message."""

import pytest

from repro.bgp.message import AnnotatedUpdate, BGPUpdate, path_links, sort_updates
from repro.bgp.prefix import Prefix

P1 = Prefix.parse("10.0.0.0/24")


class TestPathLinks:
    def test_simple_path(self):
        assert path_links((1, 2, 3)) == {(1, 2), (2, 3)}

    def test_empty_path(self):
        assert path_links(()) == set()

    def test_single_as(self):
        assert path_links((7,)) == set()

    def test_prepending_creates_no_self_links(self):
        assert path_links((1, 2, 2, 2, 3)) == {(1, 2), (2, 3)}

    def test_links_are_directed(self):
        assert path_links((1, 2)) != path_links((2, 1))


class TestBGPUpdate:
    def test_attributes(self):
        u = BGPUpdate("vp1", 10.0, P1, (6, 2, 1, 4), {(6, 100)})
        assert u.origin_as == 4
        assert u.peer_as == 6
        assert u.links() == {(6, 2), (2, 1), (1, 4)}

    def test_containers_normalized(self):
        u = BGPUpdate("vp1", 0.0, P1, [1, 2], [(1, 2)])
        assert isinstance(u.as_path, tuple)
        assert isinstance(u.communities, frozenset)

    def test_withdrawal_has_no_path(self):
        w = BGPUpdate("vp1", 0.0, P1, is_withdrawal=True)
        assert w.origin_as is None
        assert w.links() == set()

    def test_withdrawal_with_path_rejected(self):
        with pytest.raises(ValueError):
            BGPUpdate("vp1", 0.0, P1, (1, 2), is_withdrawal=True)

    def test_with_time(self):
        u = BGPUpdate("vp1", 10.0, P1, (1, 2))
        v = u.with_time(50.0)
        assert v.time == 50.0
        assert v.attribute_key() == u.attribute_key()

    def test_attribute_key_ignores_time(self):
        a = BGPUpdate("vp1", 1.0, P1, (1, 2))
        b = BGPUpdate("vp1", 99.0, P1, (1, 2))
        assert a.attribute_key() == b.attribute_key()

    def test_attribute_key_differs_by_vp(self):
        a = BGPUpdate("vp1", 1.0, P1, (1, 2))
        b = BGPUpdate("vp2", 1.0, P1, (1, 2))
        assert a.attribute_key() != b.attribute_key()

    def test_hashable(self):
        u = BGPUpdate("vp1", 1.0, P1, (1, 2))
        assert u in {u}


class TestAnnotatedUpdate:
    def test_effective_links_are_new_links(self):
        u = BGPUpdate("vp1", 0.0, P1, (1, 2, 3))
        a = AnnotatedUpdate(u, previous_links=frozenset({(1, 2), (2, 9)}))
        assert a.effective_links == frozenset({(2, 3)})

    def test_withdrawn_links_are_obsolete_previous_links(self):
        u = BGPUpdate("vp1", 0.0, P1, (1, 2, 3))
        a = AnnotatedUpdate(u, previous_links=frozenset({(1, 2), (2, 9)}))
        assert a.withdrawn_links == frozenset({(2, 9)})

    def test_effective_communities(self):
        u = BGPUpdate("vp1", 0.0, P1, (1, 2), {(1, 1), (2, 2)})
        a = AnnotatedUpdate(u, previous_communities=frozenset({(1, 1)}))
        assert a.effective_communities == frozenset({(2, 2)})

    def test_withdrawn_communities(self):
        u = BGPUpdate("vp1", 0.0, P1, (1, 2), {(1, 1)})
        a = AnnotatedUpdate(
            u, previous_communities=frozenset({(1, 1), (9, 9)}))
        assert a.withdrawn_communities == frozenset({(9, 9)})

    def test_defaults_empty(self):
        a = AnnotatedUpdate(BGPUpdate("vp1", 0.0, P1, (1, 2)))
        assert a.effective_links == frozenset({(1, 2)})
        assert a.withdrawn_links == frozenset()


def test_sort_updates_orders_by_time_then_vp():
    u1 = BGPUpdate("vpB", 1.0, P1, (1,))
    u2 = BGPUpdate("vpA", 1.0, P1, (1,))
    u3 = BGPUpdate("vpA", 0.5, P1, (1,))
    assert sort_updates([u1, u2, u3]) == [u3, u2, u1]
