"""Tests for repro.bgp.rib."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RIB, annotate_stream, final_ribs

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


class TestRIB:
    def test_first_announcement_has_no_withdrawals(self):
        rib = RIB("vp1")
        ann = rib.apply(BGPUpdate("vp1", 0.0, P1, (1, 2)))
        assert ann.withdrawn_links == frozenset()
        assert ann.withdrawn_communities == frozenset()
        assert len(rib) == 1

    def test_replacement_computes_withdrawn_links(self):
        rib = RIB("vp1")
        rib.apply(BGPUpdate("vp1", 0.0, P1, (6, 2, 1, 4)))
        ann = rib.apply(BGPUpdate("vp1", 10.0, P1, (6, 3, 1, 4)))
        assert ann.withdrawn_links == frozenset({(6, 2), (2, 1)})
        assert ann.effective_links == frozenset({(6, 3), (3, 1)})

    def test_replacement_computes_withdrawn_communities(self):
        rib = RIB("vp1")
        rib.apply(BGPUpdate("vp1", 0.0, P1, (1, 2), {(1, 1), (1, 2)}))
        ann = rib.apply(BGPUpdate("vp1", 5.0, P1, (1, 2), {(1, 2), (1, 3)}))
        assert ann.withdrawn_communities == frozenset({(1, 1)})
        assert ann.effective_communities == frozenset({(1, 3)})

    def test_withdrawal_removes_route(self):
        rib = RIB("vp1")
        rib.apply(BGPUpdate("vp1", 0.0, P1, (1, 2)))
        ann = rib.apply(BGPUpdate("vp1", 5.0, P1, is_withdrawal=True))
        assert P1 not in rib
        assert ann.withdrawn_links == frozenset({(1, 2)})

    def test_withdrawal_of_unknown_prefix_is_noop(self):
        rib = RIB("vp1")
        ann = rib.apply(BGPUpdate("vp1", 0.0, P1, is_withdrawal=True))
        assert ann.withdrawn_links == frozenset()

    def test_wrong_vp_rejected(self):
        rib = RIB("vp1")
        with pytest.raises(ValueError):
            rib.apply(BGPUpdate("vp2", 0.0, P1, (1,)))

    def test_snapshot_sorted_by_prefix(self):
        rib = RIB("vp1")
        rib.apply(BGPUpdate("vp1", 0.0, P2, (1, 2)))
        rib.apply(BGPUpdate("vp1", 0.0, P1, (1, 3)))
        snap = rib.snapshot()
        assert [r.prefix for r in snap] == [P1, P2]

    def test_identical_reannouncement_has_empty_withdrawals(self):
        rib = RIB("vp1")
        rib.apply(BGPUpdate("vp1", 0.0, P1, (1, 2), {(1, 1)}))
        ann = rib.apply(BGPUpdate("vp1", 9.0, P1, (1, 2), {(1, 1)}))
        assert ann.withdrawn_links == frozenset()
        assert ann.withdrawn_communities == frozenset()


class TestStreamHelpers:
    def test_annotate_stream_multi_vp(self):
        stream = [
            BGPUpdate("vp1", 0.0, P1, (1, 2)),
            BGPUpdate("vp2", 0.0, P1, (3, 2)),
            BGPUpdate("vp1", 5.0, P1, (1, 4, 2)),
        ]
        annotated = annotate_stream(stream)
        assert annotated[0].withdrawn_links == frozenset()
        assert annotated[1].withdrawn_links == frozenset()
        assert annotated[2].withdrawn_links == frozenset({(1, 2)})

    def test_final_ribs(self):
        stream = [
            BGPUpdate("vp1", 0.0, P1, (1, 2)),
            BGPUpdate("vp1", 1.0, P2, (1, 3)),
            BGPUpdate("vp2", 0.0, P1, (9, 2)),
            BGPUpdate("vp1", 2.0, P2, is_withdrawal=True),
        ]
        ribs = final_ribs(stream)
        assert set(ribs) == {"vp1", "vp2"}
        assert len(ribs["vp1"]) == 1
        assert ribs["vp1"].get(P1).as_path == (1, 2)
