"""Tests for the MRT-style codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.message import BGPUpdate
from repro.bgp.mrt import (
    MRTError,
    RIBRecord,
    decode_records,
    encode_rib_entry,
    encode_update,
    read_archive,
    write_archive,
)
from repro.bgp.prefix import Prefix
from repro.bgp.rib import Route

P1 = Prefix.parse("10.0.0.0/24")
P6 = Prefix.parse("2001:db8::/32")


def roundtrip(update):
    records = list(decode_records(encode_update(update)))
    assert len(records) == 1
    return records[0]


class TestUpdateRoundtrip:
    def test_announcement(self):
        u = BGPUpdate("vp1", 123.5, P1, (6, 2, 1, 4), {(6, 100), (4, 0)})
        assert roundtrip(u) == u

    def test_withdrawal(self):
        u = BGPUpdate("vp1", 7.0, P1, is_withdrawal=True)
        assert roundtrip(u) == u

    def test_ipv6_prefix(self):
        u = BGPUpdate("vp-long-name", 0.0, P6, (1, 2))
        assert roundtrip(u) == u

    def test_empty_communities(self):
        u = BGPUpdate("v", 0.0, P1, (1,))
        assert roundtrip(u) == u

    def test_large_asn(self):
        u = BGPUpdate("v", 0.0, P1, (4200000000, 2))
        assert roundtrip(u) == u


class TestRIBRecordRoundtrip:
    def test_rib_entry(self):
        route = Route(P1, (1, 2, 3), frozenset({(1, 5)}), 42.0)
        records = list(decode_records(encode_rib_entry("vp9", route)))
        assert records == [RIBRecord("vp9", route)]


class TestErrors:
    def test_truncated_header(self):
        data = encode_update(BGPUpdate("v", 0.0, P1, (1,)))
        with pytest.raises(MRTError):
            list(decode_records(data[:-3] + b""))

    def test_garbage_type(self):
        data = bytearray(encode_update(BGPUpdate("v", 0.0, P1, (1,))))
        data[8:10] = (99).to_bytes(2, "big")   # corrupt the type field
        with pytest.raises(MRTError):
            list(decode_records(bytes(data)))


class TestArchive:
    def test_write_read_compressed(self, tmp_path):
        updates = [BGPUpdate(f"vp{i}", float(i), P1, (i + 1, 2))
                   for i in range(10)]
        path = str(tmp_path / "arch.mrt.bz2")
        assert write_archive(updates, path) == 10
        assert read_archive(path) == updates

    def test_write_read_uncompressed(self, tmp_path):
        updates = [BGPUpdate("vp1", 0.0, P1, (1, 2))]
        path = str(tmp_path / "arch.mrt")
        write_archive(updates, path, compress=False)
        assert read_archive(path, compressed=False) == updates

    def test_empty_archive(self, tmp_path):
        path = str(tmp_path / "empty.mrt.bz2")
        assert write_archive([], path) == 0
        assert read_archive(path) == []


as_paths = st.lists(st.integers(min_value=1, max_value=2**32 - 1),
                    min_size=1, max_size=8).map(tuple)
communities = st.sets(
    st.tuples(st.integers(min_value=0, max_value=2**32 - 1),
              st.integers(min_value=0, max_value=2**32 - 1)),
    max_size=5,
).map(frozenset)


@given(
    vp=st.text(min_size=1, max_size=20),
    time=st.floats(min_value=0, max_value=2**31, allow_nan=False),
    index=st.integers(min_value=0, max_value=10000),
    path=as_paths,
    comms=communities,
)
def test_codec_roundtrip_property(vp, time, index, path, comms):
    """Property: decode(encode(u)) == u for arbitrary updates."""
    u = BGPUpdate(vp, time, Prefix.from_index(index), path, comms)
    assert roundtrip(u) == u
