"""Tests for the data-plane filter engine (§7 semantics)."""

from repro.bgp.filtering import (
    DropRule,
    FilterGranularity,
    FilterTable,
    build_drop_rules,
)
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp="vp1", t=0.0, prefix=P1, path=(1, 2), comms=()):
    return BGPUpdate(vp, t, prefix, path, frozenset(comms))


class TestDefaultPolicy:
    def test_empty_table_accepts_everything(self):
        table = FilterTable()
        assert table.accept(upd())

    def test_unknown_vp_prefix_accepted(self):
        table = FilterTable(drop_rules=[DropRule("vp1", P1)])
        assert table.accept(upd(vp="vp2"))
        assert table.accept(upd(prefix=P2))


class TestAnchorPriority:
    def test_anchor_overrides_drop_rule(self):
        """§7: the accept-all anchor filter has the highest priority."""
        table = FilterTable(anchor_vps=["vp1"],
                            drop_rules=[DropRule("vp1", P1)])
        assert table.accept(upd(vp="vp1", prefix=P1))

    def test_non_anchor_still_dropped(self):
        table = FilterTable(anchor_vps=["vp2"],
                            drop_rules=[DropRule("vp1", P1)])
        assert not table.accept(upd(vp="vp1", prefix=P1))


class TestGranularity:
    def test_coarse_rule_matches_any_path(self):
        table = FilterTable(drop_rules=[DropRule("vp1", P1)])
        assert not table.accept(upd(path=(1, 2)))
        assert not table.accept(upd(path=(9, 8, 7)))

    def test_aspath_rule_matches_only_same_path(self):
        rule = DropRule("vp1", P1, as_path=(1, 2))
        table = FilterTable(drop_rules=[rule])
        assert not table.accept(upd(path=(1, 2)))
        assert table.accept(upd(path=(9, 8)))

    def test_community_rule_matches_only_same_communities(self):
        rule = DropRule("vp1", P1, as_path=(1, 2),
                        communities=frozenset({(1, 1)}))
        table = FilterTable(drop_rules=[rule])
        assert not table.accept(upd(comms={(1, 1)}))
        assert table.accept(upd(comms={(2, 2)}))


class TestApply:
    def test_split_stream(self):
        table = FilterTable(drop_rules=[DropRule("vp1", P1)])
        stream = [upd(), upd(vp="vp2"), upd(prefix=P2)]
        retained, discarded = table.apply(stream)
        assert len(retained) == 2
        assert len(discarded) == 1

    def test_match_rate(self):
        table = FilterTable(drop_rules=[DropRule("vp1", P1)])
        stream = [upd(), upd(), upd(vp="vp2"), upd(vp="vp3")]
        assert table.match_rate(stream) == 0.5

    def test_match_rate_empty_stream(self):
        assert FilterTable().match_rate([]) == 0.0


class TestBuildDropRules:
    def test_coarse_dedups_by_vp_prefix(self):
        redundant = [upd(path=(1, 2)), upd(path=(3, 4)), upd(vp="vp2")]
        rules = build_drop_rules(redundant)
        assert len(rules) == 2
        assert all(r.as_path is None for r in rules)

    def test_aspath_granularity_keeps_paths(self):
        redundant = [upd(path=(1, 2)), upd(path=(3, 4))]
        rules = build_drop_rules(redundant, FilterGranularity.PREFIX_ASPATH)
        assert len(rules) == 2
        assert {r.as_path for r in rules} == {(1, 2), (3, 4)}

    def test_comm_granularity_keeps_communities(self):
        redundant = [upd(comms={(1, 1)}), upd(comms={(2, 2)})]
        rules = build_drop_rules(
            redundant, FilterGranularity.PREFIX_ASPATH_COMM)
        assert len(rules) == 2

    def test_rules_drop_exactly_their_updates(self):
        redundant = [upd(path=(1, 2)), upd(vp="vp2", path=(5, 6))]
        table = FilterTable(drop_rules=build_drop_rules(redundant))
        for u in redundant:
            assert not table.accept(u)
