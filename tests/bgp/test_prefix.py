"""Tests for repro.bgp.prefix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix, PrefixError


class TestParse:
    def test_parse_ipv4(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.family == 4
        assert p.length == 8
        assert str(p) == "10.0.0.0/8"

    def test_parse_ipv6(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.family == 6
        assert p.length == 32
        assert str(p) == "2001:db8::/32"

    def test_parse_host_route(self):
        p = Prefix.parse("192.0.2.1/32")
        assert p.length == 32

    def test_parse_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/8")

    def test_parse_rejects_garbage(self):
        with pytest.raises(PrefixError):
            Prefix.parse("not-a-prefix")

    def test_default_route(self):
        p = Prefix.parse("0.0.0.0/0")
        assert p.length == 0
        assert p.network == 0


class TestValidation:
    def test_rejects_bad_family(self):
        with pytest.raises(PrefixError):
            Prefix(5, 0, 8)

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix(4, 0, 33)

    def test_rejects_negative_length(self):
        with pytest.raises(PrefixError):
            Prefix(4, 0, -1)

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix(4, 1, 24)

    def test_rejects_network_out_of_range(self):
        with pytest.raises(PrefixError):
            Prefix(4, 1 << 40, 0)


class TestFromIndex:
    def test_distinct_indices_distinct_prefixes(self):
        prefixes = {Prefix.from_index(i) for i in range(100)}
        assert len(prefixes) == 100

    def test_index_zero_v4(self):
        assert str(Prefix.from_index(0)) == "10.0.0.0/24"

    def test_index_one_v4(self):
        assert str(Prefix.from_index(1)) == "10.0.1.0/24"

    def test_ipv6(self):
        p = Prefix.from_index(3, family=6, length=48)
        assert p.family == 6
        assert p.length == 48

    def test_rejects_negative_index(self):
        with pytest.raises(PrefixError):
            Prefix.from_index(-1)


class TestContainment:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("10.1.0.0/16").contains(
            Prefix.parse("10.0.0.0/8"))

    def test_does_not_contain_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(
            Prefix.parse("11.0.0.0/16"))

    def test_cross_family(self):
        assert not Prefix.parse("0.0.0.0/0").contains(Prefix.parse("::/0"))


class TestSubprefixes:
    def test_split_in_two(self):
        subs = list(Prefix.parse("10.0.0.0/8").subprefixes(9))
        assert [str(s) for s in subs] == ["10.0.0.0/9", "10.128.0.0/9"]

    def test_same_length_is_identity(self):
        p = Prefix.parse("10.0.0.0/8")
        assert list(p.subprefixes(8)) == [p]

    def test_rejects_shorter(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/8").subprefixes(7))


class TestOrderingAndHashing:
    def test_hashable_and_equal(self):
        assert Prefix.parse("10.0.0.0/8") == Prefix.parse("10.0.0.0/8")
        assert len({Prefix.parse("10.0.0.0/8"),
                    Prefix.parse("10.0.0.0/8")}) == 1

    def test_sortable(self):
        a, b = Prefix.parse("10.0.0.0/8"), Prefix.parse("11.0.0.0/8")
        assert sorted([b, a]) == [a, b]


@given(st.integers(min_value=0, max_value=2**20 - 1),
       st.integers(min_value=16, max_value=32))
def test_roundtrip_via_str(index, length):
    """Property: parse(str(p)) == p for generated prefixes."""
    p = Prefix.from_index(index % (1 << max(0, length - 8)), length=length)
    assert Prefix.parse(str(p)) == p


@given(st.integers(min_value=0, max_value=1000))
def test_subprefixes_are_contained(index):
    """Property: every subprefix is contained in its parent."""
    parent = Prefix.from_index(index, length=24)
    for sub in parent.subprefixes(26):
        assert parent.contains(sub)
