"""Property-based tests for the daemon capacity model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.daemon import per_update_cost, steady_state_loss

peers = st.integers(min_value=0, max_value=50_000)
rates = st.floats(min_value=0, max_value=500_000, allow_nan=False)
retain = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@settings(max_examples=100, deadline=None)
@given(peers=peers, rate=rates, retain=retain)
def test_loss_fraction_bounded(peers, rate, retain):
    result = steady_state_loss(peers, rate, True, retain_fraction=retain)
    assert 0.0 <= result.loss_fraction < 1.0


@settings(max_examples=100, deadline=None)
@given(peers=peers, rate=rates)
def test_filters_never_hurt(peers, rate):
    """At any load, filtering loses no more updates than not filtering."""
    with_filters = steady_state_loss(peers, rate, True)
    without = steady_state_loss(peers, rate, False)
    assert with_filters.loss_fraction <= without.loss_fraction + 1e-12


@settings(max_examples=100, deadline=None)
@given(rate=rates, retain=retain)
def test_loss_monotone_in_peers(rate, retain):
    losses = [
        steady_state_loss(n, rate, False,
                          retain_fraction=retain).loss_fraction
        for n in (10, 100, 1_000, 10_000)
    ]
    assert all(b >= a - 1e-12 for a, b in zip(losses, losses[1:]))


@settings(max_examples=100, deadline=None)
@given(retain=retain)
def test_cost_monotone_in_retention(retain):
    assert per_update_cost(True, retain) <= per_update_cost(True, 1.0)
    assert per_update_cost(True, retain) >= per_update_cost(True, 0.0)


@settings(max_examples=50, deadline=None)
@given(peers=peers, rate=rates)
def test_label_consistent(peers, rate):
    result = steady_state_loss(peers, rate, False)
    if result.copes:
        assert result.label == "0%"
    else:
        assert result.label != "0%"
