"""Tests for the §14 collected-route validator."""

import pytest

from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.validation import RouteValidator

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def upd(vp, t, path, prefix=P1):
    return BGPUpdate(vp, t, prefix, path)


def bootstrap(validator, n_vps=5):
    """Five VPs agree: P1 originates at AS9 via core link 2-9."""
    validator.learn([
        upd(f"vp{i}", 0.0, (100 + i, 2, 9)) for i in range(n_vps)
    ])


class TestOriginConsistency:
    def test_consistent_update_clean(self):
        validator = RouteValidator()
        bootstrap(validator)
        verdict = validator.validate(upd("vp0", 10.0, (100, 2, 9)))
        assert verdict.suspicion == 0.0
        assert not verdict.flagged

    def test_fake_origin_flagged(self):
        """A lone VP claiming a different origin is suspicious."""
        validator = RouteValidator()
        bootstrap(validator)
        verdict = validator.validate(upd("vp9", 10.0, (66, 6)))
        assert verdict.flagged
        assert any("origin" in r for r in verdict.reasons)

    def test_corroborated_moas_not_flagged_for_origin(self):
        """Two independent VPs reporting the new origin = likely real
        MOAS, not a fake feed."""
        validator = RouteValidator()
        bootstrap(validator)
        validator.learn([upd("vp1", 5.0, (101, 2, 6))])
        verdict = validator.validate(upd("vp2", 10.0, (102, 2, 6)))
        assert not any("origin" in r for r in verdict.reasons)

    def test_no_majority_no_origin_flag(self):
        validator = RouteValidator()
        verdict = validator.validate(upd("vp0", 0.0, (1, 9)))
        assert not any("origin" in r for r in verdict.reasons)


class TestLinkPlausibility:
    def test_unknown_interior_links_raise_suspicion(self):
        validator = RouteValidator()
        bootstrap(validator)
        # Same origin (no origin flag) but a fabricated interior path.
        verdict = validator.validate(
            upd("vp9", 10.0, (200, 55, 66, 9)))
        assert verdict.suspicion > 0.0
        assert any("links" in r for r in verdict.reasons)

    def test_first_hop_link_tolerated(self):
        """A new peer's own access link is legitimately unique."""
        validator = RouteValidator()
        bootstrap(validator)
        verdict = validator.validate(upd("vp9", 10.0, (200, 2, 9)))
        assert not verdict.flagged

    def test_withdrawals_never_flagged(self):
        validator = RouteValidator()
        bootstrap(validator)
        w = BGPUpdate("vp9", 10.0, P1, is_withdrawal=True)
        assert validator.validate(w).suspicion == 0.0


class TestPeerHonesty:
    def test_honest_peer_score_one(self):
        validator = RouteValidator()
        bootstrap(validator)
        for t in range(10):
            validator.validate(upd("vp0", float(t), (100, 2, 9)))
        assert validator.peer_honesty("vp0") == 1.0

    def test_liar_detected(self):
        validator = RouteValidator()
        bootstrap(validator)
        for t in range(10):
            validator.validate(
                upd("evil", float(t), (66, 50 + t, 6), P1))
        assert validator.peer_honesty("evil") < 0.8
        assert "evil" in validator.dishonest_peers()

    def test_unknown_peer_default_honest(self):
        validator = RouteValidator()
        assert validator.peer_honesty("nobody") == 1.0

    def test_few_samples_not_listed(self):
        """A peer with <5 updates is not condemned yet."""
        validator = RouteValidator()
        bootstrap(validator)
        validator.validate(upd("new", 1.0, (66, 6)))
        assert "new" not in validator.dishonest_peers()


class TestStream:
    def test_validate_stream_sorted(self):
        validator = RouteValidator()
        bootstrap(validator)
        verdicts = validator.validate_stream([
            upd("vp0", 20.0, (100, 2, 9)),
            upd("vp1", 10.0, (101, 2, 9)),
        ])
        assert [v.update.time for v in verdicts] == [10.0, 20.0]

    def test_learning_reduces_suspicion_over_time(self):
        """Once several VPs report a new link, it stops being odd."""
        validator = RouteValidator()
        bootstrap(validator)
        first = validator.validate(upd("vp1", 10.0, (101, 3, 2, 9)))
        validator.validate(upd("vp2", 11.0, (102, 3, 2, 9)))
        later = validator.validate(upd("vp3", 12.0, (103, 3, 2, 9)))
        assert later.suspicion <= first.suspicion
