"""Tests for the peering-session workflow (§9)."""

import pytest

from repro.bgp.filtering import DropRule, FilterTable
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bgp.session import (
    RIB_DUMP_INTERVAL_S,
    PeeringDB,
    PeeringError,
    PeeringRequest,
    SessionManager,
    SessionState,
)

P1 = Prefix.parse("10.0.0.0/24")


@pytest.fixture
def peeringdb():
    db = PeeringDB()
    db.register(65001, "example.net")
    return db


@pytest.fixture
def manager(peeringdb):
    return SessionManager(peeringdb)


class TestOnboarding:
    def test_happy_path_activates(self, manager):
        vp = manager.submit_form(
            PeeringRequest(65001, "noc@example.net", "r1"))
        manager.receive_email(vp, "noc@example.net", 65001)
        assert manager.sessions[vp].state is SessionState.ACTIVE
        assert vp in manager.active_vps()

    def test_wrong_asn_in_email_rejects(self, manager):
        vp = manager.submit_form(
            PeeringRequest(65001, "noc@example.net", "r1"))
        manager.receive_email(vp, "noc@example.net", 65999)
        assert manager.sessions[vp].state is SessionState.REJECTED

    def test_unauthorized_domain_rejects(self, manager):
        """Step 2: PeeringDB cross-check fails for a spoofed domain."""
        vp = manager.submit_form(
            PeeringRequest(65001, "attacker@evil.example", "r1"))
        manager.receive_email(vp, "attacker@evil.example", 65001)
        assert manager.sessions[vp].state is SessionState.REJECTED

    def test_duplicate_form_rejected(self, manager):
        manager.submit_form(PeeringRequest(65001, "noc@example.net", "r1"))
        with pytest.raises(PeeringError):
            manager.submit_form(
                PeeringRequest(65001, "noc@example.net", "r1"))

    def test_email_twice_rejected(self, manager):
        vp = manager.submit_form(
            PeeringRequest(65001, "noc@example.net", "r1"))
        manager.receive_email(vp, "noc@example.net", 65001)
        with pytest.raises(PeeringError):
            manager.receive_email(vp, "noc@example.net", 65001)

    def test_case_insensitive_domain(self, manager):
        vp = manager.submit_form(
            PeeringRequest(65001, "noc@EXAMPLE.NET", "r1"))
        manager.receive_email(vp, "noc@EXAMPLE.NET", 65001)
        assert manager.sessions[vp].state is SessionState.ACTIVE


class TestDataPlane:
    def _active(self, manager):
        vp = manager.submit_form(
            PeeringRequest(65001, "noc@example.net", "r1"))
        manager.receive_email(vp, "noc@example.net", 65001)
        return vp

    def test_inactive_session_rejects_updates(self, manager):
        vp = manager.submit_form(
            PeeringRequest(65001, "noc@example.net", "r1"))
        with pytest.raises(PeeringError):
            manager.receive(BGPUpdate(vp, 0.0, P1, (65001,)))

    def test_retained_update_stored(self, manager):
        vp = self._active(manager)
        assert manager.receive(BGPUpdate(vp, 0.0, P1, (65001,)))
        assert len(manager.sessions[vp].retained) == 1

    def test_filtered_update_discarded_but_in_rib(self, peeringdb):
        manager = SessionManager(peeringdb)
        vp = self._active(manager)
        manager.filters.add_rule(DropRule(vp, P1))
        assert not manager.receive(BGPUpdate(vp, 0.0, P1, (65001,)))
        session = manager.sessions[vp]
        assert session.discarded_count == 1
        # The RIB still reflects the peer's table (used for 8h dumps).
        assert P1 in session.rib

    def test_rib_dump_every_eight_hours(self, manager):
        vp = self._active(manager)
        manager.receive(BGPUpdate(vp, 0.0, P1, (65001,)))
        manager.receive(BGPUpdate(vp, RIB_DUMP_INTERVAL_S + 1, P1,
                                  (65001, 2)))
        assert len(manager.sessions[vp].rib_dumps) == 1

    def test_bootstrap_bypass(self, manager):
        session = manager.activate_directly("vp-ris-1", 3356)
        assert session.state is SessionState.ACTIVE
        assert manager.receive(BGPUpdate("vp-ris-1", 0.0, P1, (3356,)))


class TestReceiveStream:
    def test_skips_and_counts_non_established(self, manager):
        """One misbehaving feeder must not abort everyone's stream."""
        manager.activate_directly("vp-good", 65001)
        pending = manager.submit_form(
            PeeringRequest(65001, "noc@example.net", "r1"))
        stream = [
            BGPUpdate("vp-good", 0.0, P1, (65001,)),
            BGPUpdate(pending, 1.0, P1, (65001,)),      # not active
            BGPUpdate("vp-unknown", 2.0, P1, (65001,)),  # never onboarded
            BGPUpdate("vp-good", 3.0, P1, (65001, 2)),
        ]
        retained = manager.receive_stream(stream)
        assert retained == 2
        assert manager.skipped_count == 2
        assert len(manager.sessions["vp-good"].retained) == 2

    def test_skipped_count_accumulates(self, manager):
        manager.activate_directly("vp-good", 65001)
        bad = [BGPUpdate("vp-unknown", float(t), P1, (65001,))
               for t in range(3)]
        manager.receive_stream(bad)
        manager.receive_stream(bad)
        assert manager.skipped_count == 6

    def test_redump_rib_snapshots_out_of_schedule(self, manager):
        manager.activate_directly("vp-1", 65001)
        manager.receive(BGPUpdate("vp-1", 0.0, P1, (65001,)))
        snapshot = manager.redump_rib("vp-1")
        assert len(snapshot) == 1
        assert len(manager.sessions["vp-1"].rib_dumps) == 1
        with pytest.raises(PeeringError):
            manager.redump_rib("vp-unknown")
