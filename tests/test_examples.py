"""Smoke tests: every shipped example must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_all_examples_present():
    """The repository ships at least the five documented examples."""
    assert {"quickstart.py", "filter_lifecycle.py",
            "hijack_monitoring.py", "topology_mapping.py",
            "platform_operator.py", "prefix_defense.py"} <= set(EXAMPLES)


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, \
        f"{example} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{example} printed nothing"
