#!/usr/bin/env python3
"""The paper's worked example (Figs. 5 and 10) step by step.

Recreates the 7-AS scenario: AS4 announces p1 and p2, AS6 announces
p3; the 2-4 link fails and AS7 hijacks p3.  Shows the correlation
groups GILL builds from repeated events (§17.1), the reconstitution
power of each VP's updates (§17.2), the cross-prefix demotion between
p1 and p2 (§17.3), and the final filter table (§7).
"""

from repro.bgp.prefix import Prefix
from repro.core import (
    CorrelationGroups,
    UpdateSampler,
    filters_document,
    generate_filter_table,
    reconstitution_power,
)
from repro.simulation import (
    ASTopology,
    ForgedOriginHijack,
    HijackEnd,
    LinkFailure,
    LinkRestoration,
    SimulatedInternet,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P3 = Prefix.parse("10.0.2.0/24")


def fig5_internet() -> SimulatedInternet:
    topo = ASTopology()
    topo.add_p2p(1, 2)
    topo.add_c2p(4, 1)
    topo.add_c2p(4, 2)
    topo.add_c2p(3, 1)
    topo.add_c2p(6, 2)
    topo.add_c2p(5, 2)
    topo.add_c2p(7, 5)
    topo.add_p2p(5, 6)
    net = SimulatedInternet(topo, seed=0)
    net.announce_prefix(P1, 4)
    net.announce_prefix(P2, 4)
    net.announce_prefix(P3, 6)
    net.deploy_vps([2, 3, 5, 6])   # VP1..VP4 of the figure
    return net


def main() -> None:
    net = fig5_internet()

    print("== Events (Fig. 10: repeated failure/restore, then hijack) ==")
    stream = []
    t = 1000.0
    for cycle in range(3):
        stream += net.apply_event(LinkFailure(2, 4, time=t))
        stream += net.apply_event(LinkRestoration(2, 4, time=t + 3000))
        t += 8000.0
    stream += net.apply_event(ForgedOriginHijack(7, P3, time=t, type_x=1))
    stream += net.apply_event(HijackEnd(7, P3, time=t + 3000))
    stream.sort(key=lambda u: u.time)
    print(f"collected {len(stream)} updates from "
          f"{len({u.vp for u in stream})} VPs")
    for update in stream[:4]:
        print(f"  t={update.time:7.1f}  {update.vp}  {update.prefix}  "
              f"path {update.as_path}")
    print("  ...\n")

    print("== Correlation groups for p1 (§17.1) ==")
    groups = CorrelationGroups.build(stream)
    for group in groups.groups_for_prefix(P1):
        members = sorted((vp, path) for vp, path, _, _ in group.members)
        print(f"  weight {group.weight}: " + "; ".join(
            f"{vp}:{'-'.join(map(str, path))}" for vp, path in members))

    print("\n== Reconstitution power per single VP (§17.2) ==")
    p1_updates = [u for u in stream if u.prefix == P1]
    for vp in sorted({u.vp for u in p1_updates}):
        u = [x for x in p1_updates if x.vp == vp]
        rp = reconstitution_power(p1_updates, u, groups)
        print(f"  RP(V, {vp}) = {rp:.2f}")

    print("\n== Full component #1 (with the §17.3 cross-prefix pass) ==")
    result = UpdateSampler().run(stream)
    print(f"  nonredundant: {len(result.nonredundant)} updates, "
          f"redundant: {len(result.redundant)} "
          f"({result.demoted_count} demoted across prefixes — "
          f"p1 and p2 move together, one of them suffices)")

    print("\n== Generated filters (§7) ==")
    table = generate_filter_table(result.redundant, anchor_vps=["vp6"])
    print(filters_document(table))


if __name__ == "__main__":
    main()
