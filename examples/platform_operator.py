#!/usr/bin/env python3
"""Operating the collection platform end to end (§8-§9).

Walks through GILL's operational workflow:

1. a network operator onboards through the web form + email
   verification + PeeringDB cross-check;
2. the orchestrator ingests the update stream, mirrors it, and
   periodically re-runs the sampling algorithms to refresh filters;
3. retained updates are archived in the MRT format with bz2
   compression, and the public documents are produced.
"""

import os
import tempfile

from repro.bgp import (
    PeeringDB,
    PeeringRequest,
    SessionManager,
    SessionState,
    read_archive,
    write_archive,
)
from repro.core import (
    Orchestrator,
    OrchestratorConfig,
    anchors_document,
    filters_document,
)
from repro.workload import StreamConfig, SyntheticStreamGenerator


def main() -> None:
    # -- 1. automated peering activation (§9) ---------------------------
    print("== Onboarding ==")
    peeringdb = PeeringDB({64500: {"example.net"}})
    manager = SessionManager(peeringdb)

    vp = manager.submit_form(
        PeeringRequest(asn=64500, contact_email="noc@example.net",
                       router_id="r1"))
    print(f"form submitted -> session {vp} "
          f"({manager.sessions[vp].state.value})")
    manager.receive_email(vp, "noc@example.net", claimed_asn=64500)
    print(f"email verified + PeeringDB cross-check -> "
          f"{manager.sessions[vp].state.value}")

    impostor = manager.submit_form(
        PeeringRequest(asn=64500, contact_email="noc@evil.example",
                       router_id="r2"))
    manager.receive_email(impostor, "noc@evil.example", claimed_asn=64500)
    print(f"impostor session -> {manager.sessions[impostor].state.value}")

    # -- 2. the orchestrator control loop (§8) ---------------------------
    print("\n== Orchestration ==")
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=20, n_prefix_groups=12, duration_s=3000.0, seed=3))
    warmup, stream = generator.generate(start_time=10.0)
    data = warmup + stream

    orchestrator = Orchestrator(OrchestratorConfig(
        component1_interval_s=800.0,      # compressed-time refresh
        component2_interval_s=2400.0,
        mirror_window_s=600.0,
        events_per_cell=5,
    ))
    retained = orchestrator.process_stream(data)
    stats = orchestrator.stats
    print(f"processed {stats.received} updates: retained "
          f"{stats.retained} ({stats.retention:.1%}), "
          f"discarded {stats.discarded}")
    print(f"component #1 ran {stats.component1_runs}x, "
          f"component #2 ran {stats.component2_runs}x; "
          f"{len(orchestrator.filters)} filters loaded, "
          f"{len(orchestrator.anchor_vps)} anchors")

    # -- 3. archiving and public documents (§9) ---------------------------
    print("\n== Publication ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "updates.mrt.bz2")
        count = write_archive(retained, path)
        size = os.path.getsize(path)
        print(f"archived {count} retained updates to MRT+bz2 "
              f"({size / 1024:.1f} KiB)")
        replayed = read_archive(path)
        assert replayed == retained
        print("archive round-trips byte-exactly")

    anchors_doc = anchors_document(orchestrator.anchor_vps)
    filters_doc = filters_document(orchestrator.filters)
    print(f"anchors document: {len(anchors_doc.splitlines())} lines; "
          f"filters document: {len(filters_doc.splitlines())} lines")


if __name__ == "__main__":
    main()
