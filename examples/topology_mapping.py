#!/usr/bin/env python3
"""Topology mapping: what fraction of the AS graph do VPs reveal?

Reproduces the intuition of the paper's Fig. 1 and Fig. 4 bottom panel
interactively: sweep VP coverage on a simulated Internet, collect the
selected routes, and measure how many p2p and c2p links appear in at
least one collected AS path.  Then runs GILL's sampling at the highest
coverage to show that most of the *data* can be discarded without
losing the *links*.
"""

from repro.core import categorize_ases
from repro.sampling import GillScheme, RandomVPs
from repro.simulation import (
    Announcement,
    observed_links,
    propagate,
    random_vp_deployment,
    synthetic_known_topology,
)

SEED = 17


def main() -> None:
    topo = synthetic_known_topology(180, seed=SEED)
    p2p = topo.p2p_links()
    c2p = {(min(a, b), max(a, b)) for a, b in topo.c2p_links()}
    print(f"Ground truth: {len(topo)} ASes, "
          f"{len(p2p)} p2p links, {len(c2p)} c2p links\n")

    routes_per_origin = {
        origin: propagate(topo, [Announcement.origination(origin)])
        for origin in topo.ases()
    }

    print("VP coverage sweep (fraction of links observed):")
    for coverage in (0.01, 0.05, 0.25, 1.0):
        vps = random_vp_deployment(topo, coverage, seed=SEED)
        seen = set()
        for routes in routes_per_origin.values():
            seen |= observed_links(routes, vps)
        print(f"  {coverage:6.1%} coverage: "
              f"p2p {len(seen & p2p) / len(p2p):6.1%}   "
              f"c2p {len(seen & c2p) / len(c2p):6.1%}")

    # Now show the overshoot-and-discard effect on an update stream:
    # deploy widely, inject churn, and compare GILL's sample against a
    # random-VP sample of the same size.
    import random

    from repro.simulation import (
        LinkFailure,
        LinkRestoration,
        SimulatedInternet,
        assign_prefix_ownership,
    )
    from repro.usecases import observed_as_links

    net = SimulatedInternet(topo.copy(), seed=SEED)
    net.announce_ownership(
        assign_prefix_ownership(topo.ases(), 200, seed=SEED))
    net.deploy_vps(random_vp_deployment(topo, 0.4, seed=SEED))
    rng = random.Random(SEED)
    links = [(a, b) for a, b, _ in net.topo.links()]
    stream = list(net.initial_table_transfer())
    t = 1000.0
    for _ in range(30):
        a, b = links[rng.randrange(len(links))]
        try:
            stream += net.apply_event(LinkFailure(a, b, t))
            stream += net.apply_event(LinkRestoration(a, b, t + 600.0))
        except ValueError:
            pass
        t += 1500.0
    stream.sort(key=lambda u: u.time)

    gill = GillScheme(seed=SEED, categories=categorize_ases(topo),
                      events_per_cell=8, max_anchors=5)
    sample = gill.sample(stream)
    rnd = RandomVPs(seed=SEED).sample(stream, len(sample))

    all_links = observed_as_links(stream)
    print(f"\nAt 40% coverage the stream has {len(stream)} updates "
          f"revealing {len(all_links)} links.")
    for name, data in (("GILL sample", sample), ("random-VP", rnd)):
        seen = observed_as_links(data)
        print(f"  {name:12s}: {len(data):5d} updates "
              f"({len(data) / len(stream):5.1%}) -> "
              f"{len(seen & all_links) / len(all_links):6.1%} of links")


if __name__ == "__main__":
    main()
