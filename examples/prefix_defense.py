#!/usr/bin/env python3
"""Defending your prefixes with GILL's operator services (§14).

An operator peers with the platform and subscribes a forwarding rule
for its address space.  The platform forwards every matching update —
including ones its filters would discard — so the operator's local
ARTEMIS-style monitor sees sub-prefix hijacks the moment any VP does.
Meanwhile the platform's route validator quarantines a rogue peer
injecting fabricated routes.
"""

from repro.bgp.prefix import Prefix
from repro.bgp.validation import RouteValidator
from repro.core import (
    ForwardingRule,
    ForwardingService,
    Orchestrator,
    OrchestratorConfig,
)
from repro.simulation import (
    ASTopology,
    ForgedOriginHijack,
    SimulatedInternet,
    SubPrefixHijack,
)
from repro.usecases import SubPrefixDetector

COVER = Prefix.parse("10.7.0.0/16")
SUB = Prefix.parse("10.7.40.0/24")
OTHER = Prefix.parse("10.8.0.0/16")


def build_internet() -> SimulatedInternet:
    topo = ASTopology()
    topo.add_p2p(1, 2)
    topo.add_c2p(4, 1)      # AS4: the defended operator
    topo.add_c2p(4, 2)
    topo.add_c2p(3, 1)
    topo.add_c2p(6, 2)
    topo.add_c2p(5, 2)
    topo.add_c2p(7, 5)      # AS7: the attacker
    net = SimulatedInternet(topo, seed=4)
    net.announce_prefix(COVER, 4)
    net.announce_prefix(OTHER, 6)
    net.deploy_vps([2, 3, 5, 6])
    return net


def main() -> None:
    net = build_internet()

    # The operator's local monitor, seeded with its own prefixes
    # (ARTEMIS mode: authoritative ownership, no learning needed).
    monitor = SubPrefixDetector({COVER: 4})
    alerts = []

    forwarding = ForwardingService()
    forwarding.subscribe(
        ForwardingRule("AS4-noc", prefix=COVER),
        callback=lambda op, u: alerts.extend(monitor.scan([u])),
    )

    orchestrator = Orchestrator(
        OrchestratorConfig(component1_interval_s=1e9,
                           mirror_window_s=1e9, events_per_cell=5),
        forwarding=forwarding,
        validator=RouteValidator(),
    )

    print("Bootstrapping the platform with the converged tables...")
    baseline = net.initial_table_transfer(time=0.0)
    orchestrator.process_stream(baseline)
    print(f"  {orchestrator.stats.received} updates ingested, "
          f"{forwarding.forwarded_count} forwarded to AS4-noc\n")

    print("AS7 launches a sub-prefix hijack against AS4...")
    attack = net.apply_event(SubPrefixHijack(7, COVER, SUB, time=1000.0))
    orchestrator.process_stream(attack)
    for alarm in alerts:
        print(f"  ALERT at t={alarm.time:.0f}: {alarm.sub_prefix} "
              f"announced by AS{alarm.announced_origin} "
              f"(covering {alarm.covering_prefix} belongs to "
              f"AS{alarm.covering_origin}), first seen via {alarm.vp}")
    assert alerts, "the monitor must have fired"

    print("\nAS7 also tries a Type-1 forged-origin hijack on AS6...")
    forged = net.apply_event(ForgedOriginHijack(7, OTHER, time=2000.0))
    orchestrator.process_stream(forged)
    print(f"  {len(forged)} updates collected "
          f"(forged-origin attacks need DFOH-style path analysis — "
          f"see examples/hijack_monitoring.py)")

    print("\nA rogue peer injects a fabricated route...")
    from repro.bgp.message import BGPUpdate
    fake = BGPUpdate("rogue", 3000.0, OTHER, (66666, 55555, 44444))
    retained = orchestrator.process(fake)
    print(f"  retained: {retained}; quarantined updates: "
          f"{len(orchestrator.flagged_updates)}; rogue honesty score: "
          f"{orchestrator.validator.peer_honesty('rogue'):.2f}")


if __name__ == "__main__":
    main()
