#!/usr/bin/env python3
"""Quickstart: run GILL's sampling on a synthetic hour of BGP data.

Generates a calibrated RIS/RV-like update stream, runs both GILL
components (redundant-update detection and anchor-VP selection),
prints the headline numbers, and shows the two public documents GILL
publishes (§9): the filters and the anchor list.
"""

from repro.bgp.rib import annotate_stream
from repro.core import (
    GillSampler,
    RedundancyDefinition,
    anchors_document,
    filters_document,
    update_redundancy,
)
from repro.workload import StreamConfig, SyntheticStreamGenerator


def main() -> None:
    print("Generating one synthetic hour of BGP updates...")
    generator = SyntheticStreamGenerator(StreamConfig(
        n_vps=30, n_prefix_groups=20, duration_s=3600.0, seed=42))
    warmup, stream = generator.generate()
    data = warmup + stream
    print(f"  {len(generator.vps)} VPs, {len(stream)} updates "
          f"(+{len(warmup)} table-transfer updates)\n")

    print("How redundant is this data? (the §4.2 measurement)")
    annotated = annotate_stream(data)[len(warmup):]
    for definition in RedundancyDefinition:
        report = update_redundancy(annotated, definition)
        print(f"  Definition {definition.value}: "
              f"{report.fraction:6.1%} of updates are redundant")

    print("\nRunning GILL's sampling algorithms (components #1 and #2)...")
    result = GillSampler(events_per_cell=10, seed=42).run(data)
    component1 = result.component1
    print(f"  component #1: {len(component1.redundant)} redundant / "
          f"{len(component1.nonredundant)} nonredundant updates "
          f"(retention |U|/|V| = {component1.retention:.1%}, "
          f"{component1.demoted_count} demoted by the cross-prefix pass)")
    print(f"  component #2: {result.events_used} balanced events, "
          f"{len(result.anchor_vps)} anchor VPs")
    print(f"  generated filter table: {len(result.filters)} drop rules")

    retained = result.sample(data)
    print(f"\nApplying the filters back to the stream retains "
          f"{len(retained)}/{len(data)} updates "
          f"({len(retained) / len(data):.1%}).")

    print("\n--- published anchors document (excerpt) ---")
    print("\n".join(anchors_document(result.anchor_vps).splitlines()[:5]))
    print("\n--- published filters document (excerpt) ---")
    print("\n".join(filters_document(result.filters).splitlines()[:8]))
    print("...")


if __name__ == "__main__":
    main()
