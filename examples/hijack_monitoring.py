#!/usr/bin/env python3
"""Hijack monitoring: forged-origin attacks on a simulated Internet.

Builds a mini-Internet, deploys vantage points at two coverage levels,
launches Type-1 and Type-2 forged-origin hijacks, and shows (a) how
many attacks each deployment can even see — the §3.1 visibility gap —
and (b) a DFOH-style classifier flagging the forged links from the
collected updates (§12).
"""

import random

from repro.simulation import (
    ForgedOriginHijack,
    SimulatedInternet,
    assign_prefix_ownership,
    random_vp_deployment,
    synthetic_known_topology,
)
from repro.usecases import DFOHDetector, visible_hijacks

SEED = 9


def build_internet():
    topo = synthetic_known_topology(200, seed=SEED)
    net = SimulatedInternet(topo, seed=SEED)
    net.announce_ownership(
        assign_prefix_ownership(topo.ases(), 230, seed=SEED))
    return topo, net


def main() -> None:
    topo, net = build_internet()
    rng = random.Random(SEED)

    print(f"Simulated Internet: {len(topo)} ASes, "
          f"{topo.link_count()} links, {len(net.prefixes())} prefixes\n")

    for coverage in (0.02, 0.25):
        _, net = build_internet()   # fresh routing state per deployment
        net.deploy_vps(random_vp_deployment(topo, coverage, seed=SEED))
        rng = random.Random(SEED + 1)

        # Train the detector on the pre-attack view of the topology.
        baseline = net.initial_table_transfer(time=0.0)
        detector = DFOHDetector(suspicion_threshold=0.55)
        detector.train_on_updates(baseline)

        # Launch hijacks against random victims.
        attack_stream = []
        hijacks = []
        t = 1000.0
        prefixes = net.prefixes()
        for i in range(25):
            prefix = prefixes[rng.randrange(len(prefixes))]
            victim = net.origin_of(prefix)
            attacker = rng.choice(
                [a for a in topo.ases() if a != victim])
            type_x = 1 if i % 2 == 0 else 2
            try:
                attack_stream += net.apply_event(ForgedOriginHijack(
                    attacker, prefix, time=t, type_x=type_x))
                hijacks.append((prefix, attacker))
            except ValueError:
                continue
            t += 2000.0

        seen = visible_hijacks(attack_stream, hijacks)
        cases = detector.infer(attack_stream)
        flagged_links = {case.link for case in cases}

        print(f"coverage {coverage:5.1%}: "
              f"{len(seen)}/{len(hijacks)} hijacks visible from the VPs; "
              f"DFOH flagged {len(cases)} suspicious new links")
        for case in cases[:3]:
            print(f"    suspicious link AS{case.link[0]}-AS{case.link[1]} "
                  f"on {case.prefix} (score {case.score:.2f})")
        invisible = len(hijacks) - len(seen)
        if invisible:
            print(f"    -> {invisible} attacks reached no VP at all: "
                  f"only more coverage can expose them (§3.1)")
        print()


if __name__ == "__main__":
    main()
